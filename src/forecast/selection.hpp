// Forecast model selection (paper §3.2.1: "We also select the prediction
// method with the best performance for the following step").
//
// Trains a candidate of every method on the head of the trace, scores
// each on a held-out validation slice with the paper's accuracy metric,
// and reports the ranking. Federated deployments must agree on one
// method per device type (averaging requires homologous shapes), so the
// neighbourhood-level helper pools validation scores across residences
// before choosing.
#pragma once

#include <vector>

#include "data/trace.hpp"
#include "forecast/forecaster.hpp"

namespace pfdrl::forecast {

struct MethodScore {
  Method method = Method::kLr;
  double accuracy = 0.0;
};

struct SelectionConfig {
  data::WindowConfig window{};
  /// Fraction of [begin, end) used for training; the rest validates.
  double train_fraction = 0.75;
  /// Candidate methods to consider (default: the paper's four).
  std::vector<Method> candidates = {Method::kLr, Method::kSvr, Method::kBp,
                                    Method::kLstm};
  std::uint64_t seed = 17;
};

/// Scores per method on one device trace, sorted best-first.
std::vector<MethodScore> rank_methods(const data::DeviceTrace& trace,
                                      std::size_t begin, std::size_t end,
                                      const SelectionConfig& cfg);

/// The winner for one device.
Method select_method(const data::DeviceTrace& trace, std::size_t begin,
                     std::size_t end, const SelectionConfig& cfg);

/// Neighbourhood-level choice: pools mean validation accuracy over every
/// instance of each device, per method, and returns one method all
/// residences can federate with.
Method select_method_for_neighborhood(
    const std::vector<data::HouseholdTrace>& traces, std::size_t begin,
    std::size_t end, const SelectionConfig& cfg);

}  // namespace pfdrl::forecast
