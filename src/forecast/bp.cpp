#include "forecast/bp.hpp"

#include <numeric>

#include "forecast/adam_codec.hpp"

namespace pfdrl::forecast {

namespace {
std::vector<std::size_t> make_dims(const data::WindowConfig& window,
                                   const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> dims;
  dims.push_back(window.window + (window.calendar_features ? 2 : 0));
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(1);
  return dims;
}
}  // namespace

BpForecaster::BpForecaster(const data::WindowConfig& window,
                           std::uint64_t seed,
                           std::vector<std::size_t> hidden)
    : Forecaster(window),
      net_([&] {
        util::Rng rng(seed);
        return nn::Mlp(make_dims(window, hidden), nn::Activation::kRelu,
                       nn::Activation::kIdentity, nn::InitScheme::kHeNormal,
                       rng);
      }()),
      opt_(1e-3) {}

double BpForecaster::train(const data::DeviceTrace& trace, std::size_t begin,
                           std::size_t end, const TrainConfig& cfg,
                           util::Rng& rng) {
  const TrainConfig tcfg = resolve_train_config(Method::kBp, cfg);
  data::WindowConfig wc = window_;
  wc.stride = tcfg.stride;
  const auto set = data::make_supervised(trace, wc, begin, end);
  if (set.size() == 0) return 0.0;
  opt_.set_learning_rate(tcfg.learning_rate);

  order_.resize(set.size());
  std::iota(order_.begin(), order_.end(), 0);

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < tcfg.epochs; ++epoch) {
    rng.shuffle(order_);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t ofs = 0; ofs < order_.size(); ofs += tcfg.batch_size) {
      const std::size_t bs = std::min(tcfg.batch_size, order_.size() - ofs);
      xb_.reshape(bs, set.x.cols());
      yb_.reshape(bs, 1);
      for (std::size_t i = 0; i < bs; ++i) {
        const std::size_t src = order_[ofs + i];
        auto row = set.x.row(src);
        std::copy(row.begin(), row.end(), xb_.row(i).begin());
        yb_(i, 0) = set.y(src, 0);
      }
      loss_sum += net_.train_batch(xb_, yb_, nn::LossKind::kMae, opt_);
      ++batches;
    }
    last_epoch_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

std::vector<double> BpForecaster::predict_series(const data::DeviceTrace& trace,
                                                 std::size_t begin,
                                                 std::size_t end) const {
  data::WindowConfig wc = window_;
  wc.stride = 1;
  const std::size_t hist = data::history_needed(wc);
  const std::size_t from = begin >= hist ? begin - hist : 0;
  const auto set = data::make_supervised(trace, wc, from, end);
  const nn::Matrix pred = net_.predict(set.x);
  std::vector<double> out;
  out.reserve(set.size());
  for (std::size_t r = 0; r < set.size(); ++r) {
    if (set.target_minute[r] < begin) continue;
    out.push_back(data::decode_watts(pred(r, 0), set.scale, wc.log_scale));
  }
  return out;
}

void BpForecaster::set_parameters(std::span<const double> values) {
  net_.set_parameters(values);
  // Adam moments are intentionally kept: federated averaging moves the
  // weights only slightly (peers share init and are re-averaged every
  // round), and resetting the moments at every broadcast acted as a
  // repeated warm restart that measurably hurt DFL accuracy.  // moments refer to the replaced parameters
}

std::vector<double> BpForecaster::train_state() const {
  return detail::encode_adam(opt_);
}

void BpForecaster::set_train_state(std::span<const double> state) {
  detail::decode_adam(state, opt_);
}

std::unique_ptr<Forecaster> BpForecaster::clone() const {
  return std::unique_ptr<Forecaster>(new BpForecaster(*this));
}

}  // namespace pfdrl::forecast
