#include "forecast/fused.hpp"

#include <algorithm>
#include <numeric>

#include "forecast/bp.hpp"
#include "forecast/gru_forecaster.hpp"
#include "forecast/lstm_forecaster.hpp"
#include "nn/gru.hpp"
#include "nn/lstm.hpp"
#include "nn/mlp.hpp"

namespace pfdrl::forecast {

// The fused trainer replays each forecaster's private train loop against
// shared slabs; it needs the same private state the loop touches (the
// network and its Adam optimizer — nothing else).
struct FusedAccess {
  static nn::LstmRegressor& net(LstmForecaster& f) { return f.net_; }
  static nn::Adam& opt(LstmForecaster& f) { return f.opt_; }
  static nn::GruRegressor& net(GruForecaster& f) { return f.net_; }
  static nn::Adam& opt(GruForecaster& f) { return f.opt_; }
  static nn::Mlp& net(BpForecaster& f) { return f.net_; }
  static nn::Adam& opt(BpForecaster& f) { return f.opt_; }
};

bool FusedForecastTrainer::train(std::span<FusedTrainJob> jobs,
                                 std::size_t begin, std::size_t end,
                                 const TrainConfig& cfg) {
  if (jobs.empty()) return true;
  const Method method = jobs.front().forecaster->method();
  for (const FusedTrainJob& j : jobs) {
    if (j.forecaster->method() != method) return false;
  }
  const TrainConfig tcfg = resolve_train_config(method, cfg);
  switch (method) {
    case Method::kLstm: return train_lstm(jobs, begin, end, tcfg);
    case Method::kGru: return train_gru(jobs, begin, end, tcfg);
    case Method::kBp: return train_bp(jobs, begin, end, tcfg);
    default: return false;  // closed-form methods have no minibatch loop
  }
}

bool FusedForecastTrainer::train_lstm(std::span<FusedTrainJob> jobs,
                                      std::size_t begin, std::size_t end,
                                      const TrainConfig& tcfg) {
  lstm_all_.clear();
  adam_all_.clear();
  for (const FusedTrainJob& j : jobs) {
    auto& f = static_cast<LstmForecaster&>(*j.forecaster);
    lstm_all_.push_back(&FusedAccess::net(f));
    adam_all_.push_back(&FusedAccess::opt(f));
  }
  const nn::LstmRegressor& ref = *lstm_all_.front();
  for (const nn::LstmRegressor* n : lstm_all_) {
    if (n->feature_dim() != ref.feature_dim() ||
        n->hidden_dim() != ref.hidden_dim() ||
        n->output_dim() != ref.output_dim()) {
      return false;
    }
  }

  // Dataset construction is pure: nothing observable happens to a job
  // until after every fusability check has passed.
  seq_sets_.resize(jobs.size());
  active_.clear();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    data::WindowConfig wc = jobs[j].forecaster->window_config();
    wc.stride = tcfg.stride;
    seq_sets_[j] = data::make_sequences(*jobs[j].trace, wc, begin, end);
    jobs[j].loss = 0.0;
    // Empty datasets early-out before any RNG use, as the solo path does.
    if (seq_sets_[j].size() > 0) active_.push_back(j);
  }
  if (active_.empty()) return true;
  const std::size_t steps = seq_sets_[active_.front()].xs.size();
  const std::size_t feat = seq_sets_[active_.front()].step_features();
  std::size_t max_size = 0;
  for (const std::size_t a : active_) {
    if (seq_sets_[a].xs.size() != steps ||
        seq_sets_[a].step_features() != feat) {
      return false;
    }
    max_size = std::max(max_size, seq_sets_[a].size());
  }

  // Commit point: from here the per-job sequence mirrors the solo loop.
  orders_.resize(jobs.size());
  for (const std::size_t a : active_) {
    adam_all_[a]->set_learning_rate(tcfg.learning_rate);
    orders_[a].resize(seq_sets_[a].size());
    std::iota(orders_[a].begin(), orders_[a].end(), 0);
  }
  slab_xs_.resize(steps);
  loss_sums_.resize(jobs.size());
  batch_counts_.resize(jobs.size());

  xs_ptrs_.resize(steps);
  for (std::size_t epoch = 0; epoch < tcfg.epochs; ++epoch) {
    for (const std::size_t a : active_) jobs[a].rng->shuffle(orders_[a]);
    std::fill(loss_sums_.begin(), loss_sums_.end(), 0.0);
    std::fill(batch_counts_.begin(), batch_counts_.end(), std::size_t{0});
    // ---- Epoch arena gather: map every arena row to its (job, sample)
    // in exact batch-consumption order, then copy each timestep slab in
    // one sequential t-outer pass. Each batch then trains in place at
    // its arena offset — no per-batch gather or reshape.
    gather_job_.clear();
    gather_src_.clear();
    for (std::size_t ofs = 0; ofs < max_size; ofs += tcfg.batch_size) {
      for (const std::size_t a : active_) {
        const std::size_t n = seq_sets_[a].size();
        if (ofs >= n) continue;  // this job ran out of batches this epoch
        const std::size_t bs = std::min(tcfg.batch_size, n - ofs);
        for (std::size_t i = 0; i < bs; ++i) {
          gather_job_.push_back(a);
          gather_src_.push_back(orders_[a][ofs + i]);
        }
      }
    }
    const std::size_t total = gather_job_.size();
    for (std::size_t t = 0; t < steps; ++t) {
      slab_xs_[t].reshape(total, feat);
      for (std::size_t r = 0; r < total; ++r) {
        auto row = seq_sets_[gather_job_[r]].xs[t].row(gather_src_[r]);
        std::copy(row.begin(), row.end(), slab_xs_[t].row(r).begin());
      }
      xs_ptrs_[t] = &slab_xs_[t];
    }
    slab_y_.reshape(total, 1);
    for (std::size_t r = 0; r < total; ++r) {
      slab_y_(r, 0) = seq_sets_[gather_job_[r]].y(gather_src_[r], 0);
    }

    std::size_t batch_row0 = 0;
    for (std::size_t ofs = 0; ofs < max_size; ofs += tcfg.batch_size) {
      part_.clear();
      slices_.clear();
      lstm_nets_.clear();
      opts_.clear();
      std::size_t rows = 0;
      for (const std::size_t a : active_) {
        const std::size_t n = seq_sets_[a].size();
        if (ofs >= n) continue;
        const std::size_t bs = std::min(tcfg.batch_size, n - ofs);
        part_.push_back(a);
        slices_.push_back({rows, bs});
        lstm_nets_.push_back(lstm_all_[a]);
        opts_.push_back(adam_all_[a]);
        rows += bs;
      }
      batch_losses_.resize(part_.size());
      lstm_.train_batch(lstm_nets_, slices_, xs_ptrs_, slab_y_,
                        nn::LossKind::kMae, opts_, batch_losses_,
                        /*clip_norm=*/5.0, /*src_row0=*/batch_row0);
      batch_row0 += rows;
      for (std::size_t p = 0; p < part_.size(); ++p) {
        loss_sums_[part_[p]] += batch_losses_[p];
        ++batch_counts_[part_[p]];
      }
    }
    for (const std::size_t a : active_) {
      jobs[a].loss = batch_counts_[a] != 0
                         ? loss_sums_[a] / static_cast<double>(batch_counts_[a])
                         : 0.0;
    }
  }
  return true;
}

bool FusedForecastTrainer::train_gru(std::span<FusedTrainJob> jobs,
                                     std::size_t begin, std::size_t end,
                                     const TrainConfig& tcfg) {
  gru_all_.clear();
  adam_all_.clear();
  for (const FusedTrainJob& j : jobs) {
    auto& f = static_cast<GruForecaster&>(*j.forecaster);
    gru_all_.push_back(&FusedAccess::net(f));
    adam_all_.push_back(&FusedAccess::opt(f));
  }
  const nn::GruRegressor& ref = *gru_all_.front();
  for (const nn::GruRegressor* n : gru_all_) {
    if (n->feature_dim() != ref.feature_dim() ||
        n->hidden_dim() != ref.hidden_dim() ||
        n->output_dim() != ref.output_dim()) {
      return false;
    }
  }

  seq_sets_.resize(jobs.size());
  active_.clear();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    data::WindowConfig wc = jobs[j].forecaster->window_config();
    wc.stride = tcfg.stride;
    seq_sets_[j] = data::make_sequences(*jobs[j].trace, wc, begin, end);
    jobs[j].loss = 0.0;
    if (seq_sets_[j].size() > 0) active_.push_back(j);
  }
  if (active_.empty()) return true;
  const std::size_t steps = seq_sets_[active_.front()].xs.size();
  const std::size_t feat = seq_sets_[active_.front()].step_features();
  std::size_t max_size = 0;
  for (const std::size_t a : active_) {
    if (seq_sets_[a].xs.size() != steps ||
        seq_sets_[a].step_features() != feat) {
      return false;
    }
    max_size = std::max(max_size, seq_sets_[a].size());
  }

  orders_.resize(jobs.size());
  for (const std::size_t a : active_) {
    adam_all_[a]->set_learning_rate(tcfg.learning_rate);
    orders_[a].resize(seq_sets_[a].size());
    std::iota(orders_[a].begin(), orders_[a].end(), 0);
  }
  slab_xs_.resize(steps);
  loss_sums_.resize(jobs.size());
  batch_counts_.resize(jobs.size());

  xs_ptrs_.resize(steps);
  for (std::size_t epoch = 0; epoch < tcfg.epochs; ++epoch) {
    for (const std::size_t a : active_) jobs[a].rng->shuffle(orders_[a]);
    std::fill(loss_sums_.begin(), loss_sums_.end(), 0.0);
    std::fill(batch_counts_.begin(), batch_counts_.end(), std::size_t{0});
    // Epoch arena gather, as in train_lstm.
    gather_job_.clear();
    gather_src_.clear();
    for (std::size_t ofs = 0; ofs < max_size; ofs += tcfg.batch_size) {
      for (const std::size_t a : active_) {
        const std::size_t n = seq_sets_[a].size();
        if (ofs >= n) continue;
        const std::size_t bs = std::min(tcfg.batch_size, n - ofs);
        for (std::size_t i = 0; i < bs; ++i) {
          gather_job_.push_back(a);
          gather_src_.push_back(orders_[a][ofs + i]);
        }
      }
    }
    const std::size_t total = gather_job_.size();
    for (std::size_t t = 0; t < steps; ++t) {
      slab_xs_[t].reshape(total, feat);
      for (std::size_t r = 0; r < total; ++r) {
        auto row = seq_sets_[gather_job_[r]].xs[t].row(gather_src_[r]);
        std::copy(row.begin(), row.end(), slab_xs_[t].row(r).begin());
      }
      xs_ptrs_[t] = &slab_xs_[t];
    }
    slab_y_.reshape(total, 1);
    for (std::size_t r = 0; r < total; ++r) {
      slab_y_(r, 0) = seq_sets_[gather_job_[r]].y(gather_src_[r], 0);
    }

    std::size_t batch_row0 = 0;
    for (std::size_t ofs = 0; ofs < max_size; ofs += tcfg.batch_size) {
      part_.clear();
      slices_.clear();
      gru_nets_.clear();
      opts_.clear();
      std::size_t rows = 0;
      for (const std::size_t a : active_) {
        const std::size_t n = seq_sets_[a].size();
        if (ofs >= n) continue;
        const std::size_t bs = std::min(tcfg.batch_size, n - ofs);
        part_.push_back(a);
        slices_.push_back({rows, bs});
        gru_nets_.push_back(gru_all_[a]);
        opts_.push_back(adam_all_[a]);
        rows += bs;
      }
      batch_losses_.resize(part_.size());
      gru_.train_batch(gru_nets_, slices_, xs_ptrs_, slab_y_,
                       nn::LossKind::kMae, opts_, batch_losses_,
                       /*clip_norm=*/5.0, /*src_row0=*/batch_row0);
      batch_row0 += rows;
      for (std::size_t p = 0; p < part_.size(); ++p) {
        loss_sums_[part_[p]] += batch_losses_[p];
        ++batch_counts_[part_[p]];
      }
    }
    for (const std::size_t a : active_) {
      jobs[a].loss = batch_counts_[a] != 0
                         ? loss_sums_[a] / static_cast<double>(batch_counts_[a])
                         : 0.0;
    }
  }
  return true;
}

bool FusedForecastTrainer::train_bp(std::span<FusedTrainJob> jobs,
                                    std::size_t begin, std::size_t end,
                                    const TrainConfig& tcfg) {
  mlp_all_.clear();
  adam_all_.clear();
  for (const FusedTrainJob& j : jobs) {
    auto& f = static_cast<BpForecaster&>(*j.forecaster);
    mlp_all_.push_back(&FusedAccess::net(f));
    adam_all_.push_back(&FusedAccess::opt(f));
  }
  const nn::Mlp& ref = *mlp_all_.front();
  for (const nn::Mlp* n : mlp_all_) {
    if (!n->same_architecture(ref)) return false;
  }

  sup_sets_.resize(jobs.size());
  active_.clear();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    data::WindowConfig wc = jobs[j].forecaster->window_config();
    wc.stride = tcfg.stride;
    sup_sets_[j] = data::make_supervised(*jobs[j].trace, wc, begin, end);
    jobs[j].loss = 0.0;
    if (sup_sets_[j].size() > 0) active_.push_back(j);
  }
  if (active_.empty()) return true;
  const std::size_t feat = sup_sets_[active_.front()].features();
  std::size_t max_size = 0;
  for (const std::size_t a : active_) {
    if (sup_sets_[a].features() != feat) return false;
    max_size = std::max(max_size, sup_sets_[a].size());
  }

  orders_.resize(jobs.size());
  for (const std::size_t a : active_) {
    adam_all_[a]->set_learning_rate(tcfg.learning_rate);
    orders_[a].resize(sup_sets_[a].size());
    std::iota(orders_[a].begin(), orders_[a].end(), 0);
  }
  slab_xs_.resize(1);
  loss_sums_.resize(jobs.size());
  batch_counts_.resize(jobs.size());

  for (std::size_t epoch = 0; epoch < tcfg.epochs; ++epoch) {
    for (const std::size_t a : active_) jobs[a].rng->shuffle(orders_[a]);
    std::fill(loss_sums_.begin(), loss_sums_.end(), 0.0);
    std::fill(batch_counts_.begin(), batch_counts_.end(), std::size_t{0});
    // Epoch arena gather, as in train_lstm (single step slab here).
    gather_job_.clear();
    gather_src_.clear();
    for (std::size_t ofs = 0; ofs < max_size; ofs += tcfg.batch_size) {
      for (const std::size_t a : active_) {
        const std::size_t n = sup_sets_[a].size();
        if (ofs >= n) continue;
        const std::size_t bs = std::min(tcfg.batch_size, n - ofs);
        for (std::size_t i = 0; i < bs; ++i) {
          gather_job_.push_back(a);
          gather_src_.push_back(orders_[a][ofs + i]);
        }
      }
    }
    const std::size_t total = gather_job_.size();
    slab_xs_[0].reshape(total, feat);
    slab_y_.reshape(total, 1);
    for (std::size_t r = 0; r < total; ++r) {
      const data::SupervisedSet& set = sup_sets_[gather_job_[r]];
      auto row = set.x.row(gather_src_[r]);
      std::copy(row.begin(), row.end(), slab_xs_[0].row(r).begin());
      slab_y_(r, 0) = set.y(gather_src_[r], 0);
    }

    std::size_t batch_row0 = 0;
    for (std::size_t ofs = 0; ofs < max_size; ofs += tcfg.batch_size) {
      part_.clear();
      slices_.clear();
      mlp_nets_.clear();
      opts_.clear();
      std::size_t rows = 0;
      for (const std::size_t a : active_) {
        const std::size_t n = sup_sets_[a].size();
        if (ofs >= n) continue;
        const std::size_t bs = std::min(tcfg.batch_size, n - ofs);
        part_.push_back(a);
        slices_.push_back({rows, bs});
        mlp_nets_.push_back(mlp_all_[a]);
        opts_.push_back(adam_all_[a]);
        rows += bs;
      }
      batch_losses_.resize(part_.size());
      mlp_.train_batch(mlp_nets_, slices_, slab_xs_[0], slab_y_,
                       nn::LossKind::kMae, opts_, batch_losses_,
                       /*src_row0=*/batch_row0);
      batch_row0 += rows;
      for (std::size_t p = 0; p < part_.size(); ++p) {
        loss_sums_[part_[p]] += batch_losses_[p];
        ++batch_counts_[part_[p]];
      }
    }
    for (const std::size_t a : active_) {
      jobs[a].loss = batch_counts_[a] != 0
                         ? loss_sums_[a] / static_cast<double>(batch_counts_[a])
                         : 0.0;
    }
  }
  return true;
}

}  // namespace pfdrl::forecast
