#include "forecast/selection.hpp"

#include <algorithm>
#include <stdexcept>

#include "forecast/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::forecast {

namespace {
std::size_t split_point(std::size_t begin, std::size_t end,
                        double train_fraction) {
  train_fraction = std::clamp(train_fraction, 0.1, 0.95);
  return begin + static_cast<std::size_t>(
                     static_cast<double>(end - begin) * train_fraction);
}
}  // namespace

std::vector<MethodScore> rank_methods(const data::DeviceTrace& trace,
                                      std::size_t begin, std::size_t end,
                                      const SelectionConfig& cfg) {
  if (cfg.candidates.empty()) {
    throw std::invalid_argument("rank_methods: no candidates");
  }
  end = std::min(end, trace.minutes());
  const std::size_t validate_from = split_point(begin, end, cfg.train_fraction);

  std::vector<MethodScore> scores(cfg.candidates.size());
  util::ThreadPool::global().parallel_for(
      0, cfg.candidates.size(), [&](std::size_t i) {
        const Method method = cfg.candidates[i];
        auto model = make_forecaster(method, cfg.window, cfg.seed);
        TrainConfig train;  // per-method tuned defaults
        util::Rng rng(cfg.seed * 31 + static_cast<std::uint64_t>(method));
        model->train(trace, begin, validate_from, train, rng);
        scores[i] = {method,
                     evaluate(*model, trace, validate_from, end).mean_accuracy};
      });
  std::stable_sort(scores.begin(), scores.end(),
                   [](const MethodScore& a, const MethodScore& b) {
                     return a.accuracy > b.accuracy;
                   });
  return scores;
}

Method select_method(const data::DeviceTrace& trace, std::size_t begin,
                     std::size_t end, const SelectionConfig& cfg) {
  return rank_methods(trace, begin, end, cfg).front().method;
}

Method select_method_for_neighborhood(
    const std::vector<data::HouseholdTrace>& traces, std::size_t begin,
    std::size_t end, const SelectionConfig& cfg) {
  if (traces.empty()) {
    throw std::invalid_argument("select_method_for_neighborhood: no traces");
  }
  std::vector<util::RunningStats> pooled(cfg.candidates.size());
  for (const auto& home : traces) {
    for (const auto& dev : home.devices) {
      const auto scores = rank_methods(dev, begin, end, cfg);
      for (const auto& s : scores) {
        for (std::size_t i = 0; i < cfg.candidates.size(); ++i) {
          if (cfg.candidates[i] == s.method) pooled[i].add(s.accuracy);
        }
      }
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < pooled.size(); ++i) {
    if (pooled[i].mean() > pooled[best].mean()) best = i;
  }
  return cfg.candidates[best];
}

}  // namespace pfdrl::forecast
