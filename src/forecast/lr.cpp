#include "forecast/lr.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pfdrl::forecast {

bool cholesky_solve(std::vector<double>& a, std::size_t n,
                    std::vector<double>& b) {
  assert(a.size() == n * n && b.size() == n);
  // In-place lower Cholesky: a = L L^T.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
  }
  // Forward solve L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k];
    b[i] = v / a[i * n + i];
  }
  // Backward solve L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    double v = b[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= a[k * n + i] * b[k];
    b[i] = v / a[i * n + i];
  }
  return true;
}

LrForecaster::LrForecaster(const data::WindowConfig& window,
                           double ridge_lambda)
    : Forecaster(window), ridge_lambda_(ridge_lambda) {
  weights_.assign(feature_count() + 1, 0.0);
}

std::size_t LrForecaster::feature_count() const noexcept {
  return window_.window + (window_.calendar_features ? 2 : 0);
}

double LrForecaster::train(const data::DeviceTrace& trace, std::size_t begin,
                           std::size_t end, const TrainConfig& cfg,
                           util::Rng& /*rng*/) {
  const TrainConfig tcfg = resolve_train_config(Method::kLr, cfg);
  data::WindowConfig wc = window_;
  wc.stride = tcfg.stride;
  const auto set = data::make_supervised(trace, wc, begin, end);
  if (set.size() == 0) return 0.0;

  const std::size_t f = feature_count();
  const std::size_t n = f + 1;  // + intercept
  std::vector<double> gram(n * n, 0.0);
  std::vector<double> rhs(n, 0.0);

  for (std::size_t r = 0; r < set.size(); ++r) {
    const double* xr = set.x.row(r).data();
    const double target = set.y(r, 0);
    // Augmented feature vector with a trailing 1 for the intercept.
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = i < f ? xr[i] : 1.0;
      rhs[i] += xi * target;
      for (std::size_t j = 0; j <= i; ++j) {
        const double xj = j < f ? xr[j] : 1.0;
        gram[i * n + j] += xi * xj;
      }
    }
  }
  // Symmetrize and regularize (no penalty on the intercept).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) gram[i * n + j] = gram[j * n + i];
  }
  const double scale = static_cast<double>(set.size());
  for (std::size_t i = 0; i < f; ++i) gram[i * n + i] += ridge_lambda_ * scale;
  gram[(n - 1) * n + (n - 1)] += 1e-9;  // numerical floor

  std::vector<double> solution = rhs;
  if (!cholesky_solve(gram, n, solution)) {
    throw std::runtime_error("LrForecaster: singular normal equations");
  }
  weights_ = std::move(solution);

  // Mean squared error on the training windows (scaled units).
  double mse = 0.0;
  for (std::size_t r = 0; r < set.size(); ++r) {
    const double* xr = set.x.row(r).data();
    double pred = weights_[f];
    for (std::size_t i = 0; i < f; ++i) pred += weights_[i] * xr[i];
    const double e = pred - set.y(r, 0);
    mse += e * e;
  }
  return mse / static_cast<double>(set.size());
}

std::vector<double> LrForecaster::predict_series(const data::DeviceTrace& trace,
                                                 std::size_t begin,
                                                 std::size_t end) const {
  data::WindowConfig wc = window_;
  wc.stride = 1;
  const std::size_t hist = data::history_needed(wc);
  const std::size_t from = begin >= hist ? begin - hist : 0;
  const auto set = data::make_supervised(trace, wc, from, end);
  const std::size_t f = feature_count();
  std::vector<double> out;
  out.reserve(set.size());
  for (std::size_t r = 0; r < set.size(); ++r) {
    if (set.target_minute[r] < begin) continue;
    const double* xr = set.x.row(r).data();
    double pred = weights_[f];
    for (std::size_t i = 0; i < f; ++i) pred += weights_[i] * xr[i];
    out.push_back(data::decode_watts(pred, set.scale, wc.log_scale));
  }
  return out;
}

void LrForecaster::set_parameters(std::span<const double> values) {
  if (values.size() != weights_.size()) {
    throw std::invalid_argument("LrForecaster::set_parameters: size mismatch");
  }
  weights_.assign(values.begin(), values.end());
}

}  // namespace pfdrl::forecast
