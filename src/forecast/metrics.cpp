#include "forecast/metrics.hpp"

#include "util/stats.hpp"

namespace pfdrl::forecast {

namespace {
/// Predictions from predict_series are aligned with target minutes
/// [first_target, end) where first_target = max(begin, window).
std::size_t first_target_minute(const Forecaster& model, std::size_t begin) {
  return data::first_feasible_target(model.window_config(), begin);
}
}  // namespace

EvalResult evaluate(const Forecaster& model, const data::DeviceTrace& trace,
                    std::size_t begin, std::size_t end) {
  const auto preds = model.predict_series(trace, begin, end);
  const std::size_t t0 = first_target_minute(model, begin);
  util::RunningStats stats;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const std::size_t t = t0 + i;
    if (t >= trace.minutes()) break;
    const double acc = data::prediction_accuracy(preds[i], trace.watts[t]);
    stats.add(acc);
  }
  return {stats.mean(), stats.count()};
}

std::vector<double> accuracy_samples(const Forecaster& model,
                                     const data::DeviceTrace& trace,
                                     std::size_t begin, std::size_t end) {
  const auto preds = model.predict_series(trace, begin, end);
  const std::size_t t0 = first_target_minute(model, begin);
  std::vector<double> out;
  out.reserve(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const std::size_t t = t0 + i;
    if (t >= trace.minutes()) break;
    out.push_back(data::prediction_accuracy(preds[i], trace.watts[t]));
  }
  return out;
}

std::array<double, 24> accuracy_by_hour(const Forecaster& model,
                                        const data::DeviceTrace& trace,
                                        std::size_t begin, std::size_t end) {
  const auto preds = model.predict_series(trace, begin, end);
  const std::size_t t0 = first_target_minute(model, begin);
  std::array<util::RunningStats, 24> buckets;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const std::size_t t = t0 + i;
    if (t >= trace.minutes()) break;
    buckets[data::hour_of_day(t)].add(
        data::prediction_accuracy(preds[i], trace.watts[t]));
  }
  std::array<double, 24> out{};
  for (std::size_t h = 0; h < 24; ++h) out[h] = buckets[h].mean();
  return out;
}

}  // namespace pfdrl::forecast
