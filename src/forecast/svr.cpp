#include "forecast/svr.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pfdrl::forecast {

SvrForecaster::SvrForecaster(const data::WindowConfig& window, double epsilon,
                             double l2_lambda)
    : Forecaster(window), epsilon_(epsilon), l2_lambda_(l2_lambda) {
  weights_.assign(feature_count() + 1, 0.0);
}

std::size_t SvrForecaster::feature_count() const noexcept {
  return window_.window + (window_.calendar_features ? 2 : 0);
}

double SvrForecaster::raw_predict(const double* x) const noexcept {
  const std::size_t f = feature_count();
  double pred = weights_[f];
  for (std::size_t i = 0; i < f; ++i) pred += weights_[i] * x[i];
  return pred;
}

double SvrForecaster::train(const data::DeviceTrace& trace, std::size_t begin,
                            std::size_t end, const TrainConfig& cfg,
                            util::Rng& rng) {
  const TrainConfig tcfg = resolve_train_config(Method::kSvr, cfg);
  data::WindowConfig wc = window_;
  wc.stride = tcfg.stride;
  const auto set = data::make_supervised(trace, wc, begin, end);
  if (set.size() == 0) return 0.0;
  const std::size_t f = feature_count();

  // SVR gains little from tiny NN learning rates; use a larger effective
  // step with 1/sqrt(t) decay (standard for subgradient methods).
  const double lr0 = tcfg.learning_rate * 20.0;

  std::vector<std::size_t> order(set.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < tcfg.epochs; ++epoch) {
    rng.shuffle(order);
    double loss = 0.0;
    for (std::size_t idx : order) {
      ++t;
      const double lr = lr0 / std::sqrt(static_cast<double>(t));
      const double* xr = set.x.row(idx).data();
      const double err = raw_predict(xr) - set.y(idx, 0);
      // L2 shrinkage on weights (not intercept).
      for (std::size_t i = 0; i < f; ++i) {
        weights_[i] -= lr * l2_lambda_ * weights_[i];
      }
      if (std::abs(err) > epsilon_) {
        const double g = err > 0.0 ? 1.0 : -1.0;
        for (std::size_t i = 0; i < f; ++i) weights_[i] -= lr * g * xr[i];
        weights_[f] -= lr * g;
        loss += std::abs(err) - epsilon_;
      }
    }
    last_epoch_loss = loss / static_cast<double>(set.size());
  }
  return last_epoch_loss;
}

std::vector<double> SvrForecaster::predict_series(
    const data::DeviceTrace& trace, std::size_t begin, std::size_t end) const {
  data::WindowConfig wc = window_;
  wc.stride = 1;
  const std::size_t hist = data::history_needed(wc);
  const std::size_t from = begin >= hist ? begin - hist : 0;
  const auto set = data::make_supervised(trace, wc, from, end);
  std::vector<double> out;
  out.reserve(set.size());
  for (std::size_t r = 0; r < set.size(); ++r) {
    if (set.target_minute[r] < begin) continue;
    out.push_back(data::decode_watts(raw_predict(set.x.row(r).data()), set.scale, wc.log_scale));
  }
  return out;
}

void SvrForecaster::set_parameters(std::span<const double> values) {
  if (values.size() != weights_.size()) {
    throw std::invalid_argument("SvrForecaster::set_parameters: size mismatch");
  }
  weights_.assign(values.begin(), values.end());
}

}  // namespace pfdrl::forecast
