// Forecast evaluation helpers shared by the benches and the DFL trainer:
// the paper's relative-accuracy metric aggregated overall, per hour of
// day, and as raw per-prediction samples (for the CDF figure).
#pragma once

#include <array>
#include <vector>

#include "data/trace.hpp"
#include "forecast/forecaster.hpp"

namespace pfdrl::forecast {

struct EvalResult {
  double mean_accuracy = 0.0;
  std::size_t samples = 0;
};

/// Evaluate one-step-ahead accuracy over trace minutes [begin, end).
EvalResult evaluate(const Forecaster& model, const data::DeviceTrace& trace,
                    std::size_t begin, std::size_t end);

/// Per-prediction accuracies (for CDF plots).
std::vector<double> accuracy_samples(const Forecaster& model,
                                     const data::DeviceTrace& trace,
                                     std::size_t begin, std::size_t end);

/// Mean accuracy bucketed by hour of day; buckets with no samples are 0.
std::array<double, 24> accuracy_by_hour(const Forecaster& model,
                                        const data::DeviceTrace& trace,
                                        std::size_t begin, std::size_t end);

}  // namespace pfdrl::forecast
