// Linear epsilon-insensitive support vector regression trained by
// stochastic subgradient descent (the paper's "SVM" forecasting
// baseline, after Cao 2003). Linear kernel: the model stays a flat
// weight vector and therefore averages cleanly across residences.
#pragma once

#include <vector>

#include "forecast/forecaster.hpp"

namespace pfdrl::forecast {

class SvrForecaster final : public Forecaster {
 public:
  SvrForecaster(const data::WindowConfig& window, double epsilon = 0.01,
                double l2_lambda = 1e-4);

  [[nodiscard]] Method method() const noexcept override {
    return Method::kSvr;
  }
  double train(const data::DeviceTrace& trace, std::size_t begin,
               std::size_t end, const TrainConfig& cfg,
               util::Rng& rng) override;
  [[nodiscard]] std::vector<double> predict_series(
      const data::DeviceTrace& trace, std::size_t begin,
      std::size_t end) const override;
  [[nodiscard]] std::span<const double> parameters() const override {
    return weights_;
  }
  void set_parameters(std::span<const double> values) override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<SvrForecaster>(*this);
  }

 private:
  [[nodiscard]] std::size_t feature_count() const noexcept;
  [[nodiscard]] double raw_predict(const double* x) const noexcept;

  double epsilon_;
  double l2_lambda_;
  /// [w_0 .. w_{F-1}, intercept].
  std::vector<double> weights_;
};

}  // namespace pfdrl::forecast
