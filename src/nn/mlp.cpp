#include "nn/mlp.hpp"

#include <cassert>
#include <stdexcept>

#include "nn/kernels.hpp"
#include "nn/workspace.hpp"

namespace pfdrl::nn {

Mlp::Mlp(std::vector<std::size_t> dims, Activation hidden_act,
         Activation output_act, InitScheme scheme, util::Rng& rng)
    : dims_(std::move(dims)), hidden_act_(hidden_act), output_act_(output_act) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output dims");
  }
  for (std::size_t d : dims_) {
    if (d == 0) throw std::invalid_argument("Mlp: zero-width layer");
  }
  offsets_.resize(num_layers() + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < num_layers(); ++i) {
    offsets_[i + 1] = offsets_[i] + dense_param_count(dims_[i], dims_[i + 1]);
  }
  params_.assign(offsets_.back(), 0.0);
  grads_.assign(offsets_.back(), 0.0);
  for (std::size_t i = 0; i < num_layers(); ++i) {
    dense_init(layer_parameters(i), dims_[i], dims_[i + 1], scheme, rng);
  }
  acts_.resize(num_layers() + 1);
}

void Mlp::set_parameters(std::span<const double> values) {
  if (values.size() != params_.size()) {
    throw std::invalid_argument("Mlp::set_parameters: size mismatch");
  }
  std::copy(values.begin(), values.end(), params_.begin());
}

const Matrix& Mlp::forward(const Matrix& x) {
  assert(x.cols() == input_dim());
  input_ = &x;  // view, not copy — x must outlive the matching backward()
  for (std::size_t i = 0; i < num_layers(); ++i) {
    dense_forward(layer_parameters(i), dims_[i], dims_[i + 1], layer_input(i),
                  layer_act(i), acts_[i + 1]);
  }
  return acts_.back();
}

Matrix Mlp::predict(const Matrix& x) const {
  Workspace ws;
  return predict(x, ws);
}

const Matrix& Mlp::predict(const Matrix& x, Workspace& ws) const {
  assert(x.cols() == input_dim());
  const Matrix* cur = &x;
  for (std::size_t i = 0; i < num_layers(); ++i) {
    Matrix& y = ws.take(x.rows(), dims_[i + 1]);
    dense_forward(layer_parameters(i), dims_[i], dims_[i + 1], *cur,
                  layer_act(i), y);
    cur = &y;
  }
  return *cur;
}

void Mlp::zero_grad() noexcept {
  for (double& g : grads_) g = 0.0;
}

void Mlp::backward(Matrix& grad_out) {
  assert(input_ != nullptr && "backward() requires a preceding forward()");
  assert(grad_out.rows() == acts_.back().rows());
  assert(grad_out.cols() == output_dim());
  for (std::size_t i = num_layers(); i-- > 0;) {
    auto grad_slice =
        std::span(grads_).subspan(offsets_[i], layer_param_count(i));
    dense_backward(layer_parameters(i), dims_[i], dims_[i + 1],
                   layer_input(i), acts_[i + 1], layer_act(i), grad_out,
                   grad_slice, i > 0 ? &grad_scratch_ : nullptr);
    if (i > 0) std::swap(grad_out, grad_scratch_);
  }
}

double Mlp::train_batch(const Matrix& x, const Matrix& y, LossKind loss,
                        Optimizer& opt, double huber_delta) {
  const Matrix& pred = forward(x);
  const double value = loss_value(loss, pred, y, huber_delta);
  loss_grad(loss, pred, y, loss_grad_scratch_, huber_delta);
  zero_grad();
  backward(loss_grad_scratch_);
  opt.step(params_, grads_);
  kernels::note_train_batch();
  return value;
}

bool Mlp::same_architecture(const Mlp& other) const noexcept {
  return dims_ == other.dims_ && hidden_act_ == other.hidden_act_ &&
         output_act_ == other.output_act_;
}

}  // namespace pfdrl::nn
