// Model checkpoint serialization: a small tagged binary format holding a
// shape signature plus the flat parameter vector. The signature guards
// against loading a checkpoint into a differently-shaped model — the same
// guard federated agents apply before aggregating a received update.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pfdrl::nn {

struct Checkpoint {
  /// Free-form architecture tag, e.g. "mlp:6-100x8-3:relu".
  std::string signature;
  std::vector<double> parameters;
};

/// Serialize to a byte buffer (magic, version, signature, params).
std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& ckpt);
/// Parse; throws std::runtime_error on malformed input or version skew.
Checkpoint deserialize_checkpoint(std::span<const std::uint8_t> bytes);

/// File convenience wrappers. Throw std::runtime_error on IO failure.
void save_checkpoint(const Checkpoint& ckpt, const std::string& path);
Checkpoint load_checkpoint(const std::string& path);

/// FNV-1a hash of the parameter bytes: used by tests and by the message
/// bus to cheaply assert payload integrity end-to-end.
std::uint64_t parameter_digest(std::span<const double> params) noexcept;

}  // namespace pfdrl::nn
