// Single-layer LSTM regressor with a dense head, trained by full
// backpropagation through time. Used by the LSTM load forecaster (the
// paper's best-performing prediction model).
//
// All parameters live in one flat buffer so the model can participate in
// federated averaging exactly like the MLP:
//   [ Wx (F x 4H) | Wh (H x 4H) | b (4H) | W_head (H x O) | b_head (O) ]
// Gate order inside the 4H dimension: input, forget, candidate, output.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {

class Workspace;

class LstmRegressor {
 public:
  /// feature_dim F, hidden_dim H, output_dim O (usually 1).
  LstmRegressor(std::size_t feature_dim, std::size_t hidden_dim,
                std::size_t output_dim, util::Rng& rng);

  [[nodiscard]] std::size_t feature_dim() const noexcept { return f_; }
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return h_; }
  [[nodiscard]] std::size_t output_dim() const noexcept { return o_; }

  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return params_.size();
  }
  [[nodiscard]] std::span<double> parameters() noexcept { return params_; }
  [[nodiscard]] std::span<const double> parameters() const noexcept {
    return params_;
  }

  void set_parameters(std::span<const double> values);

  /// Forward over a sequence: xs[t] is the batch-by-F input at step t.
  /// All steps must share the same batch size. Returns batch-by-O output
  /// and caches activations for backward(). The step inputs are held by
  /// reference: `xs` must outlive the matching backward().
  const Matrix& forward(const std::vector<Matrix>& xs);
  /// Stateless inference (allocates a scratch workspace per call).
  [[nodiscard]] Matrix predict(const std::vector<Matrix>& xs) const;
  /// Allocation-free inference: gate/cell/hidden step scratch lives in
  /// workspace slots that steady-state calls reuse without growth. The
  /// returned reference points into `ws`.
  const Matrix& predict(const std::vector<Matrix>& xs, Workspace& ws) const;

  /// Forward + loss + BPTT + optimizer step. Gradients are L2-clipped at
  /// `clip_norm` (0 disables clipping). Returns batch loss.
  double train_batch(const std::vector<Matrix>& xs, const Matrix& y,
                     LossKind loss, Optimizer& opt, double clip_norm = 5.0);

 private:
  struct StepCache {
    const Matrix* x = nullptr;  // B x F step input (view into caller's xs)
    Matrix gates;   // B x 4H, post-nonlinearity (i, f, g, o)
    Matrix c;       // B x H cell state after the step
    Matrix tanh_c;  // B x H
    Matrix h;       // B x H hidden after the step
  };

  // Parameter slice accessors (const versions mirror).
  [[nodiscard]] std::span<double> wx() noexcept;
  [[nodiscard]] std::span<double> wh() noexcept;
  [[nodiscard]] std::span<double> bias() noexcept;
  [[nodiscard]] std::span<double> w_head() noexcept;
  [[nodiscard]] std::span<double> b_head() noexcept;
  [[nodiscard]] std::span<const double> wx() const noexcept;
  [[nodiscard]] std::span<const double> wh() const noexcept;
  [[nodiscard]] std::span<const double> bias() const noexcept;
  [[nodiscard]] std::span<const double> w_head() const noexcept;
  [[nodiscard]] std::span<const double> b_head() const noexcept;

  /// One recurrent step into caller-provided scratch (all outputs are
  /// reshaped in place and fully overwritten). Shared by the training
  /// forward (cache matrices) and the workspace predict (arena slots).
  void step_compute(const Matrix& x, const Matrix& h_prev,
                    const Matrix& c_prev, Matrix& gates, Matrix& c,
                    Matrix& tanh_c, Matrix& h) const;
  /// Dense head: out = h_last * W_head + b_head (out reshaped in place).
  void head_into(const Matrix& h_last, Matrix& out) const;
  void backward(const Matrix& grad_out, std::span<double> grads);

  std::size_t f_, h_, o_;
  std::vector<double> params_;
  // Training caches. steps_ is resized (not cleared) per forward so the
  // per-step scratch keeps its heap buffers across batches; h0_/c0_ are
  // the zeroed initial states the first step reads.
  std::vector<StepCache> steps_;
  Matrix h0_, c0_;
  Matrix output_;
  // Persistent training scratch: the gradient arena and the BPTT
  // deltas are assigned/reshaped in place each train_batch, so
  // steady-state batches of a stable shape perform no heap allocation.
  std::vector<double> grads_scratch_;
  Matrix grad_out_scratch_;
  Matrix dh_, dc_, dz_;
};

}  // namespace pfdrl::nn
