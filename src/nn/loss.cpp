#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace pfdrl::nn {

double huber(double error, double delta) noexcept {
  const double abs_err = std::abs(error);
  if (abs_err <= delta) return 0.5 * error * error;
  return delta * (abs_err - 0.5 * delta);
}

double huber_grad(double error, double delta) noexcept {
  if (std::abs(error) <= delta) return error;
  return error > 0.0 ? delta : -delta;
}

double loss_value(LossKind kind, const Matrix& pred, const Matrix& target,
                  double huber_delta) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  const auto ps = pred.data();
  const auto ts = target.data();
  const auto n = static_cast<double>(ps.size());
  if (ps.empty()) return 0.0;
  double total = 0.0;
  switch (kind) {
    case LossKind::kMse:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        const double e = ps[i] - ts[i];
        total += e * e;
      }
      return total / n;
    case LossKind::kMae:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        total += std::abs(ps[i] - ts[i]);
      }
      return total / n;
    case LossKind::kHuber:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        total += huber(ps[i] - ts[i], huber_delta);
      }
      return total / n;
  }
  return 0.0;
}

void loss_grad(LossKind kind, const Matrix& pred, const Matrix& target,
               Matrix& grad, double huber_delta) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  if (grad.rows() != pred.rows() || grad.cols() != pred.cols()) {
    grad = Matrix(pred.rows(), pred.cols());
  }
  const auto ps = pred.data();
  const auto ts = target.data();
  auto gs = grad.data();
  const double inv_n = ps.empty() ? 0.0 : 1.0 / static_cast<double>(ps.size());
  switch (kind) {
    case LossKind::kMse:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        gs[i] = 2.0 * (ps[i] - ts[i]) * inv_n;
      }
      break;
    case LossKind::kMae:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        const double e = ps[i] - ts[i];
        gs[i] = (e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0)) * inv_n;
      }
      break;
    case LossKind::kHuber:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        gs[i] = huber_grad(ps[i] - ts[i], huber_delta) * inv_n;
      }
      break;
  }
}

double loss_value_rows(LossKind kind, const Matrix& pred,
                       const Matrix& target, std::size_t row_begin,
                       std::size_t rows, double huber_delta) {
  assert(pred.rows() == target.rows());
  return loss_value_rows(kind, pred, row_begin, target, row_begin, rows,
                         huber_delta);
}

double loss_value_rows(LossKind kind, const Matrix& pred,
                       std::size_t pred_row_begin, const Matrix& target,
                       std::size_t target_row_begin, std::size_t rows,
                       double huber_delta) {
  assert(pred.cols() == target.cols());
  assert(pred_row_begin + rows <= pred.rows());
  assert(target_row_begin + rows <= target.rows());
  const std::size_t count = rows * pred.cols();
  const auto ps = pred.data().subspan(pred_row_begin * pred.cols(), count);
  const auto ts =
      target.data().subspan(target_row_begin * target.cols(), count);
  if (ps.empty()) return 0.0;
  const auto n = static_cast<double>(ps.size());
  double total = 0.0;
  switch (kind) {
    case LossKind::kMse:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        const double e = ps[i] - ts[i];
        total += e * e;
      }
      return total / n;
    case LossKind::kMae:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        total += std::abs(ps[i] - ts[i]);
      }
      return total / n;
    case LossKind::kHuber:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        total += huber(ps[i] - ts[i], huber_delta);
      }
      return total / n;
  }
  return 0.0;
}

void loss_grad_rows(LossKind kind, const Matrix& pred, const Matrix& target,
                    std::size_t row_begin, std::size_t rows, Matrix& grad,
                    double huber_delta) {
  assert(pred.rows() == target.rows());
  loss_grad_rows(kind, pred, row_begin, target, row_begin, rows, grad,
                 huber_delta);
}

void loss_grad_rows(LossKind kind, const Matrix& pred,
                    std::size_t pred_row_begin, const Matrix& target,
                    std::size_t target_row_begin, std::size_t rows,
                    Matrix& grad, double huber_delta) {
  assert(pred.cols() == target.cols());
  assert(grad.rows() == pred.rows() && grad.cols() == pred.cols());
  assert(pred_row_begin + rows <= pred.rows());
  assert(target_row_begin + rows <= target.rows());
  const std::size_t count = rows * pred.cols();
  const auto ps = pred.data().subspan(pred_row_begin * pred.cols(), count);
  const auto ts =
      target.data().subspan(target_row_begin * target.cols(), count);
  auto gs = grad.data().subspan(pred_row_begin * pred.cols(), count);
  const double inv_n = ps.empty() ? 0.0 : 1.0 / static_cast<double>(ps.size());
  switch (kind) {
    case LossKind::kMse:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        gs[i] = 2.0 * (ps[i] - ts[i]) * inv_n;
      }
      break;
    case LossKind::kMae:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        const double e = ps[i] - ts[i];
        gs[i] = (e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0)) * inv_n;
      }
      break;
    case LossKind::kHuber:
      for (std::size_t i = 0; i < ps.size(); ++i) {
        gs[i] = huber_grad(ps[i] - ts[i], huber_delta) * inv_n;
      }
      break;
  }
}

const char* loss_name(LossKind kind) noexcept {
  switch (kind) {
    case LossKind::kMse: return "mse";
    case LossKind::kMae: return "mae";
    case LossKind::kHuber: return "huber";
  }
  return "?";
}

}  // namespace pfdrl::nn
