#include "nn/matrix.hpp"

#include <cassert>
#include <functional>
#include <stdexcept>
#include <utility>

#include "nn/kernels.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

void Matrix::fill(double v) noexcept {
  for (double& x : data_) x = v;
}

std::size_t Matrix::reshape(std::size_t rows, std::size_t cols) {
  const std::size_t old_cap = data_.capacity();
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  const std::size_t new_cap = data_.capacity();
  return new_cap > old_cap ? (new_cap - old_cap) * sizeof(double) : 0;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

void Matrix::axpy(double alpha, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  // Not kernels::axpy: `other` may legally alias *this here.
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::squared_norm() const noexcept {
  return kernels::dot(data_.data(), data_.data(), data_.size());
}

namespace {

// Row-range matmul kernel in ikj order: out_row accumulates one
// kernels::axpy per k, so the j sweep is branch-free and vectorizes
// (broadcast a[i][k], contiguous loads from b's row k). Each output
// element is still a single accumulator walked in ascending-k order —
// only the *loop structure* changed; dropping the old `aik == 0.0` skip
// adds exact +0.0 terms. Bitwise identical across thread counts: rows
// are sharded, never the k reduction.
void matmul_rows(const Matrix& a, const Matrix& b, Matrix& out,
                 std::size_t row_begin, std::size_t row_end) {
  const std::size_t n = b.cols();
  const std::size_t k_dim = a.cols();
  const double* b0 = b.rows() ? b.row(0).data() : nullptr;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* a_row = a.row(i).data();
    double* out_row = out.row(i).data();
    for (std::size_t j = 0; j < n; ++j) out_row[j] = 0.0;
    for (std::size_t k = 0; k < k_dim; ++k) {
      kernels::axpy(a_row[k], b0 + k * n, out_row, n);
    }
  }
}

// True when the two buffers share any bytes (std::less gives the total
// pointer order the comparison needs to stay defined across objects).
bool buffers_overlap(std::span<const double> x,
                     std::span<const double> y) noexcept {
  if (x.empty() || y.empty()) return false;
  const std::less<const double*> lt;
  return lt(x.data(), y.data() + y.size()) &&
         lt(y.data(), x.data() + x.size());
}

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& out, bool threaded) {
  assert(a.cols() == b.rows());
  // Writing the product over an operand that is still being read would
  // corrupt it silently; detour through a temporary instead.
  if (buffers_overlap(out.data(), a.data()) ||
      buffers_overlap(out.data(), b.data())) {
    Matrix tmp;
    matmul(a, b, tmp, threaded);
    out = std::move(tmp);
    return;
  }
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    out = Matrix(a.rows(), b.cols());
  }
  // Threading pays off only for enough work per row; below the cutoff the
  // pool dispatch overhead dominates.
  constexpr std::size_t kFlopCutoff = 1u << 16;
  const std::size_t flops = a.rows() * a.cols() * b.cols();
  if (threaded && flops >= kFlopCutoff && a.rows() > 1) {
    util::ThreadPool::global().parallel_for_chunked(
        0, a.rows(),
        [&](std::size_t lo, std::size_t hi) { matmul_rows(a, b, out, lo, hi); });
  } else {
    matmul_rows(a, b, out, 0, a.rows());
  }
}

Matrix matmul(const Matrix& a, const Matrix& b, bool threaded) {
  Matrix out(a.rows(), b.cols());
  matmul(a, b, out, threaded);
  return out;
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  if (out.rows() != a.cols() || out.cols() != b.cols()) {
    out = Matrix(a.cols(), b.cols());
  } else {
    out.zero();
  }
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* a_row = a.row(r).data();
    const double* b_row = b.row(r).data();
    for (std::size_t i = 0; i < m; ++i) {
      kernels::axpy(a_row[i], b_row, out.row(i).data(), n);
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  if (out.rows() != a.rows() || out.cols() != b.rows()) {
    out = Matrix(a.rows(), b.rows());
  }
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.rows();
  // Both operand rows are contiguous over k, so each output is one
  // strip-mined kernels::dot (4-lane reduction, fixed combine order).
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row(i).data();
    double* out_row = out.row(i).data();
    for (std::size_t j = 0; j < n; ++j) {
      out_row[j] = kernels::dot(a_row, b.row(j).data(), k_dim);
    }
  }
}

void add_row_vector(Matrix& m, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double* row = m.row(r).data();
    const double* b = bias.row(0).data();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += b[c];
  }
}

void sum_rows(const Matrix& m, Matrix& out) {
  if (out.rows() != 1 || out.cols() != m.cols()) {
    out = Matrix(1, m.cols());
  } else {
    out.zero();
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r).data();
    double* o = out.row(0).data();
    for (std::size_t c = 0; c < m.cols(); ++c) o[c] += row[c];
  }
}

}  // namespace pfdrl::nn
