#include "nn/ref.hpp"

#include <cassert>

namespace pfdrl::nn::ref {

double dot(const double* x, const double* y, std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t k = 0; k < n; ++k) s += x[k] * y[k];
  return s;
}

void axpy(double a, const double* x, double* y, std::size_t n) noexcept {
  if (a == 0.0) return;
  for (std::size_t j = 0; j < n; ++j) y[j] += a * x[j];
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  out = Matrix(a.rows(), b.cols());
  const std::size_t n = b.cols();
  const std::size_t k_dim = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row(i).data();
    double* out_row = out.row(i).data();
    for (std::size_t j = 0; j < n; ++j) {
      double c = 0.0;
      for (std::size_t k = 0; k < k_dim; ++k) {
        const double aik = a_row[k];
        if (aik == 0.0) continue;
        c += aik * b(k, j);
      }
      out_row[j] = c;
    }
  }
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  out = Matrix(a.cols(), b.cols());
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* a_row = a.row(r).data();
    const double* b_row = b.row(r).data();
    for (std::size_t i = 0; i < m; ++i) {
      const double ari = a_row[i];
      if (ari == 0.0) continue;
      double* out_row = out.row(i).data();
      for (std::size_t j = 0; j < n; ++j) out_row[j] += ari * b_row[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  out = Matrix(a.rows(), b.rows());
  const std::size_t k_dim = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.row(i).data();
    double* out_row = out.row(i).data();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.row(j).data();
      double s = 0.0;
      for (std::size_t k = 0; k < k_dim; ++k) s += a_row[k] * b_row[k];
      out_row[j] = s;
    }
  }
}

}  // namespace pfdrl::nn::ref
