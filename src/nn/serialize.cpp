#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/records.hpp"

namespace pfdrl::nn {

namespace {
constexpr std::uint32_t kMagic = 0x5046444C;  // "PFDL"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::uint8_t>& in) {
  if (in.size() < sizeof(T)) {
    throw std::runtime_error("checkpoint: truncated input");
  }
  T value;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return value;
}
}  // namespace

std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& ckpt) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + ckpt.signature.size() + ckpt.parameters.size() * 8);
  append_pod(out, kMagic);
  append_pod(out, kVersion);
  append_pod(out, static_cast<std::uint64_t>(ckpt.signature.size()));
  out.insert(out.end(), ckpt.signature.begin(), ckpt.signature.end());
  append_pod(out, static_cast<std::uint64_t>(ckpt.parameters.size()));
  for (double v : ckpt.parameters) append_pod(out, v);
  append_pod(out, parameter_digest(ckpt.parameters));
  return out;
}

Checkpoint deserialize_checkpoint(std::span<const std::uint8_t> bytes) {
  if (read_pod<std::uint32_t>(bytes) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  if (read_pod<std::uint32_t>(bytes) != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  Checkpoint ckpt;
  // Both length prefixes are untrusted: a corrupt or truncated buffer can
  // carry any value here, so validate against the bytes actually present
  // before allocating or touching payload data — a 2^60 "length" must
  // throw, not reserve().
  const auto sig_len = read_pod<std::uint64_t>(bytes);
  if (sig_len > bytes.size()) {
    throw std::runtime_error("checkpoint: truncated signature");
  }
  ckpt.signature.assign(reinterpret_cast<const char*>(bytes.data()),
                        static_cast<std::size_t>(sig_len));
  bytes = bytes.subspan(static_cast<std::size_t>(sig_len));
  const auto n = read_pod<std::uint64_t>(bytes);
  if (n > bytes.size() / sizeof(double)) {
    throw std::runtime_error("checkpoint: truncated parameters");
  }
  ckpt.parameters.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ckpt.parameters.push_back(read_pod<double>(bytes));
  }
  const auto digest = read_pod<std::uint64_t>(bytes);
  if (digest != parameter_digest(ckpt.parameters)) {
    throw std::runtime_error("checkpoint: digest mismatch (corrupt payload)");
  }
  return ckpt;
}

void save_checkpoint(const Checkpoint& ckpt, const std::string& path) {
  // Crash-safe: stage-and-rename, never the target file in place. A crash
  // mid-write used to leave a truncated, unloadable checkpoint at `path`;
  // now it leaves either the previous file or the complete new one.
  util::atomic_write_file(path, serialize_checkpoint(ckpt));
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize_checkpoint(bytes);
}

std::uint64_t parameter_digest(std::span<const double> params) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (double v : params) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      hash ^= (bits >> (i * 8)) & 0xFF;
      hash *= 0x100000001B3ULL;
    }
  }
  return hash;
}

}  // namespace pfdrl::nn
