// First-order optimizers operating on flat parameter/gradient spans.
// Layers expose their parameters as contiguous slices of a per-model flat
// buffer (see mlp.hpp), so one optimizer instance serves a whole network
// and keeps its slot state aligned with parameter indices — which is what
// makes the PFDRL base/personal layer split straightforward: averaging a
// prefix of the flat buffer averages exactly the base layers.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pfdrl::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// params[i] -= update derived from grads[i]. Sizes must match the size
  /// passed at construction.
  virtual void step(std::span<double> params, std::span<const double> grads) = 0;
  /// Reset internal state (moments); used when a model's parameters are
  /// replaced wholesale by a federated aggregate.
  virtual void reset() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Optimizer> clone() const = 0;

  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) noexcept : lr_(lr) {}
  double lr_;
};

/// Plain stochastic gradient descent (the paper's DSGD local step).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr) noexcept : Optimizer(lr) {}
  void step(std::span<double> params, std::span<const double> grads) override;
  void reset() override {}
  [[nodiscard]] std::string name() const override { return "sgd"; }
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Sgd>(lr_);
  }
};

/// SGD with classical momentum.
class Momentum final : public Optimizer {
 public:
  Momentum(double lr, double beta = 0.9) noexcept : Optimizer(lr), beta_(beta) {}
  void step(std::span<double> params, std::span<const double> grads) override;
  void reset() override { velocity_.clear(); }
  [[nodiscard]] std::string name() const override { return "momentum"; }
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Momentum>(lr_, beta_);
  }

 private:
  double beta_;
  std::vector<double> velocity_;
};

/// Serializable Adam moment state (see Adam::capture_state). `m` and `v`
/// are empty before the first step; afterwards both match the parameter
/// count.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
  long t = 0;
};

/// Adam (Kingma & Ba). Default hyperparameters.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8) noexcept
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(std::span<double> params, std::span<const double> grads) override;
  void reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

  /// Snapshot / restore the moment vectors and step count, so a resumed
  /// run continues the bias-corrected updates bitwise instead of cold-
  /// starting the moments (which acts as an unplanned warm restart of
  /// the learning-rate schedule).
  [[nodiscard]] AdamState capture_state() const { return {m_, v_, t_}; }
  void restore_state(AdamState state) {
    if (state.m.size() != state.v.size()) {
      throw std::invalid_argument("Adam: moment size mismatch");
    }
    m_ = std::move(state.m);
    v_ = std::move(state.v);
    t_ = state.t;
  }
  [[nodiscard]] std::string name() const override { return "adam"; }
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Adam>(lr_, beta1_, beta2_, eps_);
  }

 private:
  double beta1_, beta2_, eps_;
  std::vector<double> m_, v_;
  long t_ = 0;
};

}  // namespace pfdrl::nn
