// Cross-home fused training batches (docs/fused_training.md).
//
// Every home trains the same forecaster/DQN architecture on the same
// window shapes, so a federation round is thousands of tiny per-home
// batches that leave the PR 5 strip-mined kernels starved. The fused
// layer gathers a group of homes' minibatches into one home-major slab —
// rows [home0's batch | home1's batch | ...] — and runs the whole slab
// through register-blocked kernels (nn::kernels::fused_*), slice by
// slice against each home's own parameter bank, then scatters per-home
// gradient slices back into each home's own optimizer state.
//
// Because parameter banks stay per-home, the "one big matmul per gate"
// is block-diagonal: each home's row slice multiplies its own weights.
// The win is structural, not algebraic — one assembly pass, one scratch
// arena, 4-row register tiles that stream each weight row once per
// kernels::kRowBlock rows, and member-major scheduling: since members
// share no accumulators (disjoint slab row slices, own parameter bank,
// own gradient buffer, own optimizer state), each member's entire
// forward/loss/backward/step becomes one task fanned out across
// util::ThreadPool — each bank stays hot in cache for the whole
// sequence, and the pool's static chunking leaves every member's
// arithmetic untouched, so results are bitwise identical at any thread
// count.
//
// Determinism contract: PRESERVED, not re-blessed. Every fused kernel
// keeps each output element a single accumulator walked in the exact
// term order of the per-home path (see kernels.hpp), every nonlinearity
// is invoked with the identical per-row slice the per-home path uses,
// and per-home loss/clip/Adam steps run in the same per-home sequence.
// Fused and per-home training are bitwise interchangeable; the
// equivalence is pinned by nn_fused_test across LSTM/GRU/MLP/DQN.
//
// All scratch lives in nn::Workspace slots (and capacity-reusing member
// buffers), so steady-state fused batches of a stable shape perform no
// heap allocation — the same zero-churn contract as the PR 4/5 paths,
// pinned by the fused zero-alloc test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "nn/workspace.hpp"

namespace pfdrl::nn {

class GruRegressor;
class LstmRegressor;
class Mlp;

/// One member's row range inside a fused home-major slab. slices[i]
/// covers rows [row_begin, row_begin + rows) and belongs to nets[i].
struct FusedSlice {
  std::size_t row_begin = 0;
  std::size_t rows = 0;
};

/// Process-wide fused-batch telemetry (exported by the obs layer as
/// `nn.fused_homes` — high-water group members per fused batch — and
/// `nn.fused_batch_rows` — cumulative slab rows trained). One relaxed
/// atomic update per fused batch.
void note_fused_batch(std::size_t members, std::size_t rows) noexcept;
[[nodiscard]] std::uint64_t total_fused_batches() noexcept;
[[nodiscard]] std::uint64_t total_fused_rows() noexcept;
[[nodiscard]] std::uint64_t max_fused_members() noexcept;

/// Fused multi-home LSTM trainer. One train_batch call runs forward +
/// per-slice loss + BPTT + per-home clip/Adam for every member over the
/// shared slab — bitwise identical to calling nets[i]->train_batch on
/// slice i's rows alone.
class FusedLstm {
 public:
  /// xs[t] is the step-t slab and y the target slab; the batch covers
  /// rows [src_row0, src_row0 + total_rows) of both, where total_rows is
  /// the sum of slice rows. slices[] row_begins remain batch-local
  /// (slice 0 starts at 0); src_row0 lets the forecast layer keep one
  /// persistent epoch arena and train consecutive batches out of it
  /// without re-gathering. nets/slices/opts/losses are parallel arrays
  /// (losses receives each member's batch loss). All nets must share
  /// (F, H, O).
  void train_batch(std::span<LstmRegressor* const> nets,
                   std::span<const FusedSlice> slices,
                   std::span<const Matrix* const> xs, const Matrix& y,
                   LossKind loss, std::span<Optimizer* const> opts,
                   std::span<double> losses, double clip_norm = 5.0,
                   std::size_t src_row0 = 0);

 private:
  Workspace ws_;
  // Per-step slab pointers into ws_ (stable addresses; rebuilt per batch).
  std::vector<Matrix*> gates_, c_, tanh_c_, h_;
  // Per-member gradient arena (member count x parameter count), zeroed
  // per batch with capacity reuse.
  std::vector<double> grads_;
};

/// Fused multi-home GRU trainer; same contract as FusedLstm.
class FusedGru {
 public:
  void train_batch(std::span<GruRegressor* const> nets,
                   std::span<const FusedSlice> slices,
                   std::span<const Matrix* const> xs, const Matrix& y,
                   LossKind loss, std::span<Optimizer* const> opts,
                   std::span<double> losses, double clip_norm = 5.0,
                   std::size_t src_row0 = 0);

 private:
  Workspace ws_;
  std::vector<Matrix*> gates_, h_;
  std::vector<double> grads_;
};

/// Fused multi-home MLP: shared activation slabs, per-home weight banks.
/// forward() caches slab activations for backward(); backward()
/// accumulates each member's gradients into that member's own
/// Mlp::gradients() buffer (callers zero_grad and step per member, the
/// same sequence the per-home path runs). All nets must share
/// architecture (Mlp::same_architecture).
class FusedMlp {
 public:
  /// As with the recurrent trainers, src_row0 offsets the rows read from
  /// x / y (epoch-arena batches); the returned prediction slab and
  /// grad_out stay batch-local (rows [0, total_rows)).
  const Matrix& forward(std::span<Mlp* const> nets,
                        std::span<const FusedSlice> slices, const Matrix& x,
                        std::size_t src_row0 = 0);
  void backward(std::span<Mlp* const> nets, std::span<const FusedSlice> slices,
                Matrix& grad_out);
  /// Forward + per-slice loss + backward + per-member optimizer step.
  void train_batch(std::span<Mlp* const> nets,
                   std::span<const FusedSlice> slices, const Matrix& x,
                   const Matrix& y, LossKind loss,
                   std::span<Optimizer* const> opts, std::span<double> losses,
                   std::size_t src_row0 = 0);

 private:
  Workspace ws_;
  std::vector<Matrix*> acts_;  // acts_[i] = layer i output slab (1-based)
  std::vector<Matrix*> grad_slabs_;  // backward delta slab per layer (l >= 1)
  const Matrix* input_ = nullptr;
  std::size_t input_row0_ = 0;  // forward()'s src_row0, for backward()
};

}  // namespace pfdrl::nn
