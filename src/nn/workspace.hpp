// Reusable scratch arena for the inference hot path.
//
// A Workspace is a bump-allocated pool of Matrix slots: reset() rewinds
// the slot cursor to zero and take(rows, cols) hands out the next slot
// reshaped to the requested geometry. Slots keep their heap buffers
// across reset(), so a steady-state caller that issues the same sequence
// of take() shapes every iteration performs **zero heap allocations**
// after the first (warm-up) pass — which is exactly what the per-decision
// DQN forward pass needs (millions of batch-1 predictions per simulated
// neighbourhood, see docs/performance.md).
//
// Contract:
//   * Ownership — the workspace owns every slot; references returned by
//     take() stay valid until the Workspace is destroyed (slots live
//     behind unique_ptr, so pool growth never moves them). Their
//     *contents* are only meaningful until the next reset()/take() cycle
//     reuses the slot.
//   * Growth — a slot grows geometrically (std::vector) and never
//     shrinks; shrinking reshapes reuse the existing capacity.
//   * Thread affinity — a Workspace is single-threaded state, exactly
//     like util::Rng: give each agent/forecaster its own instance and
//     never share one across concurrent callers.
//   * Contents of a fresh take() are unspecified (possibly stale); every
//     kernel that writes into a slot must fully overwrite it.
//
// Process-wide telemetry: every slot-buffer growth bumps an atomic
// allocation counter and a bytes-held total, exported by the obs layer
// as `nn.workspace_allocs` / `nn.scratch_bytes` (same pattern as
// `exchange.payload_copies`). Tests pin the steady-state act path to
// zero growths via these counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace pfdrl::nn {

class Workspace {
 public:
  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Rewind the slot cursor; buffers (and their capacity) are kept.
  void reset() noexcept { next_ = 0; }

  /// Next scratch matrix, reshaped to rows x cols. Contents unspecified.
  Matrix& take(std::size_t rows, std::size_t cols);

  /// Flat scratch span of n doubles (a 1 x n slot's row).
  std::span<double> take_span(std::size_t n) { return take(1, n).row(0); }

  /// Heap bytes currently held by this workspace's slots.
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  /// Number of pooled slots (high-water mark of takes per cycle).
  [[nodiscard]] std::size_t slots() const noexcept { return slots_.size(); }

  /// Process-wide number of slot-buffer growths across all workspaces —
  /// steady state adds zero (the acceptance criterion for the
  /// allocation-free act path).
  [[nodiscard]] static std::uint64_t total_allocations() noexcept;
  /// Process-wide bytes currently held by live workspaces.
  [[nodiscard]] static std::uint64_t total_bytes() noexcept;

 private:
  std::vector<std::unique_ptr<Matrix>> slots_;
  std::size_t next_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace pfdrl::nn
