#include "nn/optimizer.hpp"

#include <cassert>
#include <cmath>

namespace pfdrl::nn {

void Sgd::step(std::span<double> params, std::span<const double> grads) {
  assert(params.size() == grads.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr_ * grads[i];
  }
}

void Momentum::step(std::span<double> params, std::span<const double> grads) {
  assert(params.size() == grads.size());
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = beta_ * velocity_[i] + grads[i];
    params[i] -= lr_ * velocity_[i];
  }
}

void Adam::step(std::span<double> params, std::span<const double> grads) {
  assert(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bias1;
    const double vhat = v_[i] / bias2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

}  // namespace pfdrl::nn
