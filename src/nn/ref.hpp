// Scalar reference kernels — the pre-vectorization implementations,
// preserved verbatim so the strip-mined nn::kernels layer stays testable
// against the math it replaced.
//
// These are the single-accumulator, ascending-k, zero-skipping loops the
// library shipped before the multi-accumulator rewrite (the semantics the
// pre-re-bless golden constants were recorded under). They are *not*
// called from production code: tests/nn_kernels_test.cpp sweeps a shape
// grid (including the LSTM/GRU gate shapes) and bounds the production
// kernels against these at 1e-12 relative error — axpy-family results
// must match bitwise, dot-family results differ only by reassociation
// rounding. Keep them dumb and obviously correct; never "optimize" them.
#pragma once

#include <cstddef>

#include "nn/matrix.hpp"

namespace pfdrl::nn::ref {

/// Single-accumulator dot product, ascending k.
[[nodiscard]] double dot(const double* x, const double* y,
                         std::size_t n) noexcept;

/// y[j] += a * x[j], with the historical `a == 0` skip (bitwise
/// equivalent to the branch-free production axpy: skipped terms
/// contribute exactly +0.0).
void axpy(double a, const double* x, double* y, std::size_t n) noexcept;

/// out = a * b, one accumulator per output element, ascending k, zero
/// a-terms skipped. `out` is resized to a.rows() x b.cols().
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = aᵀ * b without materializing the transpose.
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * bᵀ without materializing the transpose.
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace pfdrl::nn::ref
