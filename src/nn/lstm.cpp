#include "nn/lstm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/workspace.hpp"

namespace pfdrl::nn {

LstmRegressor::LstmRegressor(std::size_t feature_dim, std::size_t hidden_dim,
                             std::size_t output_dim, util::Rng& rng)
    : f_(feature_dim), h_(hidden_dim), o_(output_dim) {
  if (f_ == 0 || h_ == 0 || o_ == 0) {
    throw std::invalid_argument("LstmRegressor: zero dimension");
  }
  const std::size_t total =
      f_ * 4 * h_ + h_ * 4 * h_ + 4 * h_ + h_ * o_ + o_;
  params_.assign(total, 0.0);

  // Xavier init for the recurrent blocks, He for the head; forget-gate
  // bias starts at 1.0 (standard trick: remember by default).
  {
    Matrix m(f_, 4 * h_);
    init_weights(m, InitScheme::kXavierUniform, rng);
    std::copy(m.data().begin(), m.data().end(), wx().begin());
  }
  {
    Matrix m(h_, 4 * h_);
    init_weights(m, InitScheme::kXavierUniform, rng);
    std::copy(m.data().begin(), m.data().end(), wh().begin());
  }
  for (std::size_t j = h_; j < 2 * h_; ++j) bias()[j] = 1.0;
  {
    Matrix m(h_, o_);
    init_weights(m, InitScheme::kXavierUniform, rng);
    std::copy(m.data().begin(), m.data().end(), w_head().begin());
  }
}

std::span<double> LstmRegressor::wx() noexcept {
  return std::span(params_).subspan(0, f_ * 4 * h_);
}
std::span<double> LstmRegressor::wh() noexcept {
  return std::span(params_).subspan(f_ * 4 * h_, h_ * 4 * h_);
}
std::span<double> LstmRegressor::bias() noexcept {
  return std::span(params_).subspan(f_ * 4 * h_ + h_ * 4 * h_, 4 * h_);
}
std::span<double> LstmRegressor::w_head() noexcept {
  return std::span(params_).subspan(f_ * 4 * h_ + h_ * 4 * h_ + 4 * h_,
                                    h_ * o_);
}
std::span<double> LstmRegressor::b_head() noexcept {
  return std::span(params_).subspan(
      f_ * 4 * h_ + h_ * 4 * h_ + 4 * h_ + h_ * o_, o_);
}
std::span<const double> LstmRegressor::wx() const noexcept {
  return std::span(params_).subspan(0, f_ * 4 * h_);
}
std::span<const double> LstmRegressor::wh() const noexcept {
  return std::span(params_).subspan(f_ * 4 * h_, h_ * 4 * h_);
}
std::span<const double> LstmRegressor::bias() const noexcept {
  return std::span(params_).subspan(f_ * 4 * h_ + h_ * 4 * h_, 4 * h_);
}
std::span<const double> LstmRegressor::w_head() const noexcept {
  return std::span(params_).subspan(f_ * 4 * h_ + h_ * 4 * h_ + 4 * h_,
                                    h_ * o_);
}
std::span<const double> LstmRegressor::b_head() const noexcept {
  return std::span(params_).subspan(
      f_ * 4 * h_ + h_ * 4 * h_ + 4 * h_ + h_ * o_, o_);
}

void LstmRegressor::set_parameters(std::span<const double> values) {
  if (values.size() != params_.size()) {
    throw std::invalid_argument("LstmRegressor::set_parameters: size mismatch");
  }
  std::copy(values.begin(), values.end(), params_.begin());
}

void LstmRegressor::step_compute(const Matrix& x, const Matrix& h_prev,
                                 const Matrix& c_prev, Matrix& gates,
                                 Matrix& c, Matrix& tanh_c, Matrix& h) const {
  const std::size_t batch = x.rows();
  assert(x.cols() == f_);
  gates.reshape(batch, 4 * h_);
  c.reshape(batch, h_);
  tanh_c.reshape(batch, h_);
  h.reshape(batch, h_);

  const double* pwx = wx().data();
  const double* pwh = wh().data();
  const double* pb = bias().data();

  for (std::size_t r = 0; r < batch; ++r) {
    double* z = gates.row(r).data();
    for (std::size_t j = 0; j < 4 * h_; ++j) z[j] = pb[j];
    const double* xr = x.row(r).data();
    for (std::size_t k = 0; k < f_; ++k) {
      kernels::axpy(xr[k], pwx + k * 4 * h_, z, 4 * h_);
    }
    const double* hr = h_prev.row(r).data();
    for (std::size_t k = 0; k < h_; ++k) {
      kernels::axpy(hr[k], pwh + k * 4 * h_, z, 4 * h_);
    }
    // Nonlinearities, batched per gate slice so each slice is one
    // vector-math call (gate layout i | f | g | o): sigmoid over the
    // contiguous i,f block, tanh over g, sigmoid over o.
    kernels::sigmoid_inplace(z, 2 * h_);
    kernels::tanh_inplace(z + 2 * h_, h_);
    kernels::sigmoid_inplace(z + 3 * h_, h_);
    // State update.
    const double* cprev = c_prev.row(r).data();
    double* cr = c.row(r).data();
    double* tc = tanh_c.row(r).data();
    double* hv = h.row(r).data();
    for (std::size_t j = 0; j < h_; ++j) {
      cr[j] = z[h_ + j] * cprev[j] + z[j] * z[2 * h_ + j];
      tc[j] = cr[j];
    }
    kernels::tanh_inplace(tc, h_);
    for (std::size_t j = 0; j < h_; ++j) hv[j] = z[3 * h_ + j] * tc[j];
  }
}

void LstmRegressor::head_into(const Matrix& h_last, Matrix& out) const {
  const std::size_t batch = h_last.rows();
  out.reshape(batch, o_);
  const double* w = w_head().data();
  const double* b = b_head().data();
  for (std::size_t r = 0; r < batch; ++r) {
    const double* hr = h_last.row(r).data();
    double* yr = out.row(r).data();
    for (std::size_t j = 0; j < o_; ++j) yr[j] = b[j];
    for (std::size_t k = 0; k < h_; ++k) {
      kernels::axpy(hr[k], w + k * o_, yr, o_);
    }
  }
}

const Matrix& LstmRegressor::forward(const std::vector<Matrix>& xs) {
  if (xs.empty()) throw std::invalid_argument("LstmRegressor: empty sequence");
  const std::size_t batch = xs.front().rows();
  // resize (not clear+resize): surviving StepCaches keep their buffers,
  // so repeat batches of the same shape allocate nothing.
  steps_.resize(xs.size());
  h0_.reshape(batch, h_);
  h0_.zero();
  c0_.reshape(batch, h_);
  c0_.zero();
  for (std::size_t t = 0; t < xs.size(); ++t) {
    assert(xs[t].rows() == batch);
    const Matrix& h_prev = t > 0 ? steps_[t - 1].h : h0_;
    const Matrix& c_prev = t > 0 ? steps_[t - 1].c : c0_;
    StepCache& cache = steps_[t];
    cache.x = &xs[t];
    step_compute(xs[t], h_prev, c_prev, cache.gates, cache.c, cache.tanh_c,
                 cache.h);
  }
  head_into(steps_.back().h, output_);
  return output_;
}

Matrix LstmRegressor::predict(const std::vector<Matrix>& xs) const {
  Workspace ws;
  return predict(xs, ws);
}

const Matrix& LstmRegressor::predict(const std::vector<Matrix>& xs,
                                     Workspace& ws) const {
  if (xs.empty()) throw std::invalid_argument("LstmRegressor: empty sequence");
  const std::size_t batch = xs.front().rows();
  Matrix& gates = ws.take(batch, 4 * h_);
  Matrix& tanh_c = ws.take(batch, h_);
  Matrix* h_prev = &ws.take(batch, h_);
  Matrix* h_next = &ws.take(batch, h_);
  Matrix* c_prev = &ws.take(batch, h_);
  Matrix* c_next = &ws.take(batch, h_);
  Matrix& out = ws.take(batch, o_);
  h_prev->zero();
  c_prev->zero();
  for (const Matrix& x : xs) {
    assert(x.rows() == batch);
    step_compute(x, *h_prev, *c_prev, gates, *c_next, tanh_c, *h_next);
    std::swap(h_prev, h_next);
    std::swap(c_prev, c_next);
  }
  head_into(*h_prev, out);
  return out;
}

void LstmRegressor::backward(const Matrix& grad_out, std::span<double> grads) {
  assert(grads.size() == params_.size());
  const std::size_t batch = grad_out.rows();
  const std::size_t T = steps_.size();
  assert(grad_out.cols() == o_);

  const std::size_t wx_off = 0;
  const std::size_t wh_off = f_ * 4 * h_;
  const std::size_t b_off = wh_off + h_ * 4 * h_;
  const std::size_t whead_off = b_off + 4 * h_;
  const std::size_t bhead_off = whead_off + h_ * o_;

  Matrix& dh = dh_;
  Matrix& dc = dc_;
  dh.reshape(batch, h_);  // fully written by the head backward below
  dc.reshape(batch, h_);
  dc.zero();

  // Head backward: dL/dh_T = grad_out * W_head^T; head grads.
  {
    const double* w = w_head().data();
    for (std::size_t r = 0; r < batch; ++r) {
      const double* go = grad_out.row(r).data();
      const double* hr = steps_.back().h.row(r).data();
      double* dhr = dh.row(r).data();
      for (std::size_t j = 0; j < o_; ++j) grads[bhead_off + j] += go[j];
      kernels::outer_acc(hr, h_, go, o_, grads.data() + whead_off);
      for (std::size_t k = 0; k < h_; ++k) {
        dhr[k] = kernels::dot(go, w + k * o_, o_);
      }
    }
  }

  Matrix& dz = dz_;
  dz.reshape(batch, 4 * h_);  // fully written per step
  const double* pwh = wh().data();
  for (std::size_t t = T; t-- > 0;) {
    const StepCache& st = steps_[t];
    const Matrix* c_prev = t > 0 ? &steps_[t - 1].c : nullptr;
    const Matrix* h_prev = t > 0 ? &steps_[t - 1].h : nullptr;

    for (std::size_t r = 0; r < batch; ++r) {
      const double* gates = st.gates.row(r).data();
      const double* tc = st.tanh_c.row(r).data();
      double* dhr = dh.row(r).data();
      double* dcr = dc.row(r).data();
      double* dzr = dz.row(r).data();
      for (std::size_t j = 0; j < h_; ++j) {
        const double i_g = gates[j];
        const double f_g = gates[h_ + j];
        const double g_g = gates[2 * h_ + j];
        const double o_g = gates[3 * h_ + j];
        const double cp = c_prev ? (*c_prev)(r, j) : 0.0;

        const double do_g = dhr[j] * tc[j];
        dcr[j] += dhr[j] * o_g * (1.0 - tc[j] * tc[j]);
        const double di = dcr[j] * g_g;
        const double df = dcr[j] * cp;
        const double dg = dcr[j] * i_g;

        dzr[j] = di * i_g * (1.0 - i_g);
        dzr[h_ + j] = df * f_g * (1.0 - f_g);
        dzr[2 * h_ + j] = dg * (1.0 - g_g * g_g);
        dzr[3 * h_ + j] = do_g * o_g * (1.0 - o_g);

        // dc propagates to the previous step through the forget gate.
        dcr[j] *= f_g;
      }
    }

    // Accumulate parameter gradients and compute dh_{t-1}.
    for (std::size_t r = 0; r < batch; ++r) {
      const double* dzr = dz.row(r).data();
      const double* xr = st.x->row(r).data();
      for (std::size_t j = 0; j < 4 * h_; ++j) grads[b_off + j] += dzr[j];
      kernels::outer_acc(xr, f_, dzr, 4 * h_, grads.data() + wx_off);
      if (h_prev != nullptr) {
        const double* hp = h_prev->row(r).data();
        kernels::outer_acc(hp, h_, dzr, 4 * h_, grads.data() + wh_off);
      }
      // dh_{t-1} = dz * Wh^T.
      double* dhr = dh.row(r).data();
      for (std::size_t k = 0; k < h_; ++k) {
        dhr[k] = kernels::dot(dzr, pwh + k * 4 * h_, 4 * h_);
      }
    }
  }
}

double LstmRegressor::train_batch(const std::vector<Matrix>& xs,
                                  const Matrix& y, LossKind loss,
                                  Optimizer& opt, double clip_norm) {
  const Matrix& pred = forward(xs);
  const double value = loss_value(loss, pred, y);
  loss_grad(loss, pred, y, grad_out_scratch_);

  // assign() reuses the arena's capacity after the first batch — the
  // steady-state train loop performs no gradient-buffer allocation.
  grads_scratch_.assign(params_.size(), 0.0);
  std::vector<double>& grads = grads_scratch_;
  backward(grad_out_scratch_, grads);

  if (clip_norm > 0.0) {
    const double sq = kernels::dot(grads.data(), grads.data(), grads.size());
    const double norm = std::sqrt(sq);
    if (norm > clip_norm) {
      const double scale = clip_norm / norm;
      for (double& g : grads) g *= scale;
    }
  }
  opt.step(params_, grads);
  kernels::note_train_batch();
  return value;
}

}  // namespace pfdrl::nn
