// Weight initialization schemes.
#pragma once

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {

enum class InitScheme { kXavierUniform, kHeNormal, kZero };

/// Initialize `w` (fan_in x fan_out layout) with the given scheme.
void init_weights(Matrix& w, InitScheme scheme, util::Rng& rng);

}  // namespace pfdrl::nn
