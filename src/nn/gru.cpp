#include "nn/gru.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/workspace.hpp"

namespace pfdrl::nn {

GruRegressor::GruRegressor(std::size_t feature_dim, std::size_t hidden_dim,
                           std::size_t output_dim, util::Rng& rng)
    : f_(feature_dim), h_(hidden_dim), o_(output_dim) {
  if (f_ == 0 || h_ == 0 || o_ == 0) {
    throw std::invalid_argument("GruRegressor: zero dimension");
  }
  const std::size_t total = f_ * 3 * h_ + h_ * 3 * h_ + 3 * h_ + h_ * o_ + o_;
  params_.assign(total, 0.0);
  {
    Matrix m(f_, 3 * h_);
    init_weights(m, InitScheme::kXavierUniform, rng);
    std::copy(m.data().begin(), m.data().end(), params_.begin());
  }
  {
    Matrix m(h_, 3 * h_);
    init_weights(m, InitScheme::kXavierUniform, rng);
    std::copy(m.data().begin(), m.data().end(),
              params_.begin() + static_cast<std::ptrdiff_t>(f_ * 3 * h_));
  }
  {
    Matrix m(h_, o_);
    init_weights(m, InitScheme::kXavierUniform, rng);
    std::copy(m.data().begin(), m.data().end(),
              params_.begin() +
                  static_cast<std::ptrdiff_t>(f_ * 3 * h_ + h_ * 3 * h_ +
                                              3 * h_));
  }
}

void GruRegressor::set_parameters(std::span<const double> values) {
  if (values.size() != params_.size()) {
    throw std::invalid_argument("GruRegressor::set_parameters: size mismatch");
  }
  std::copy(values.begin(), values.end(), params_.begin());
}

void GruRegressor::step_compute(const Matrix& x, const Matrix& h_prev,
                                Matrix& gates, Matrix& h) const {
  const std::size_t batch = x.rows();
  assert(x.cols() == f_);
  gates.reshape(batch, 3 * h_);
  h.reshape(batch, h_);

  const double* wx = params_.data();
  const double* wh = params_.data() + f_ * 3 * h_;
  const double* b = params_.data() + f_ * 3 * h_ + h_ * 3 * h_;

  for (std::size_t r = 0; r < batch; ++r) {
    double* z = gates.row(r).data();
    for (std::size_t j = 0; j < 3 * h_; ++j) z[j] = b[j];
    const double* xr = x.row(r).data();
    for (std::size_t k = 0; k < f_; ++k) {
      kernels::axpy(xr[k], wx + k * 3 * h_, z, 3 * h_);
    }
    // Recurrent input: z and r gates see h directly; the candidate sees
    // r ⊙ h, so it must be computed after r. First accumulate h into the
    // z/r slices only.
    const double* hp = h_prev.row(r).data();
    for (std::size_t k = 0; k < h_; ++k) {
      kernels::axpy(hp[k], wh + k * 3 * h_, z, 2 * h_);
    }
    // Gate nonlinearities for z, r — one batched call over the slice.
    kernels::sigmoid_inplace(z, 2 * h_);
    // Candidate pre-activation gets (r ⊙ h) through the last H columns.
    for (std::size_t k = 0; k < h_; ++k) {
      kernels::axpy(z[h_ + k] * hp[k], wh + k * 3 * h_ + 2 * h_, z + 2 * h_,
                    h_);
    }
    kernels::tanh_inplace(z + 2 * h_, h_);
    double* hv = h.row(r).data();
    for (std::size_t j = 0; j < h_; ++j) {
      const double zg = z[j];
      hv[j] = (1.0 - zg) * hp[j] + zg * z[2 * h_ + j];
    }
  }
}

void GruRegressor::head_into(const Matrix& h_last, Matrix& out) const {
  const std::size_t batch = h_last.rows();
  out.reshape(batch, o_);
  const double* w = params_.data() + f_ * 3 * h_ + h_ * 3 * h_ + 3 * h_;
  const double* b = w + h_ * o_;
  for (std::size_t r = 0; r < batch; ++r) {
    const double* hr = h_last.row(r).data();
    double* yr = out.row(r).data();
    for (std::size_t j = 0; j < o_; ++j) yr[j] = b[j];
    for (std::size_t k = 0; k < h_; ++k) {
      kernels::axpy(hr[k], w + k * o_, yr, o_);
    }
  }
}

const Matrix& GruRegressor::forward(const std::vector<Matrix>& xs) {
  if (xs.empty()) throw std::invalid_argument("GruRegressor: empty sequence");
  const std::size_t batch = xs.front().rows();
  // resize (not clear+resize): surviving StepCaches keep their buffers.
  steps_.resize(xs.size());
  h0_.reshape(batch, h_);
  h0_.zero();
  for (std::size_t t = 0; t < xs.size(); ++t) {
    assert(xs[t].rows() == batch);
    StepCache& cache = steps_[t];
    cache.x = &xs[t];
    cache.h_prev = t > 0 ? &steps_[t - 1].h : &h0_;
    step_compute(xs[t], *cache.h_prev, cache.gates, cache.h);
  }
  head_into(steps_.back().h, output_);
  return output_;
}

Matrix GruRegressor::predict(const std::vector<Matrix>& xs) const {
  Workspace ws;
  return predict(xs, ws);
}

const Matrix& GruRegressor::predict(const std::vector<Matrix>& xs,
                                    Workspace& ws) const {
  if (xs.empty()) throw std::invalid_argument("GruRegressor: empty sequence");
  const std::size_t batch = xs.front().rows();
  Matrix& gates = ws.take(batch, 3 * h_);
  Matrix* h_prev = &ws.take(batch, h_);
  Matrix* h_next = &ws.take(batch, h_);
  Matrix& out = ws.take(batch, o_);
  h_prev->zero();
  for (const Matrix& x : xs) {
    assert(x.rows() == batch);
    step_compute(x, *h_prev, gates, *h_next);
    std::swap(h_prev, h_next);
  }
  head_into(*h_prev, out);
  return out;
}

void GruRegressor::backward(const Matrix& grad_out, std::span<double> grads) {
  assert(grads.size() == params_.size());
  const std::size_t batch = grad_out.rows();
  const std::size_t T = steps_.size();

  const std::size_t wx_off = 0;
  const std::size_t wh_off = f_ * 3 * h_;
  const std::size_t b_off = wh_off + h_ * 3 * h_;
  const std::size_t whead_off = b_off + 3 * h_;
  const std::size_t bhead_off = whead_off + h_ * o_;

  Matrix& dh = dh_;
  dh.reshape(batch, h_);  // fully written by the head backward below

  // Head backward.
  {
    const double* w = params_.data() + whead_off;
    for (std::size_t r = 0; r < batch; ++r) {
      const double* go = grad_out.row(r).data();
      const double* hr = steps_.back().h.row(r).data();
      double* dhr = dh.row(r).data();
      for (std::size_t j = 0; j < o_; ++j) grads[bhead_off + j] += go[j];
      kernels::outer_acc(hr, h_, go, o_, grads.data() + whead_off);
      for (std::size_t k = 0; k < h_; ++k) {
        dhr[k] = kernels::dot(go, w + k * o_, o_);
      }
    }
  }

  Matrix& dz = dz_;
  dz.reshape(batch, 3 * h_);  // fully written per step
  const double* wh = params_.data() + wh_off;
  for (std::size_t t = T; t-- > 0;) {
    const StepCache& st = steps_[t];
    for (std::size_t r = 0; r < batch; ++r) {
      const double* g = st.gates.row(r).data();
      const double* hp = st.h_prev->row(r).data();
      double* dhr = dh.row(r).data();
      double* dzr = dz.row(r).data();
      for (std::size_t j = 0; j < h_; ++j) {
        const double zg = g[j];
        const double rg = g[h_ + j];
        const double cand = g[2 * h_ + j];
        const double dht = dhr[j];

        const double dzg = dht * (cand - hp[j]);
        const double dcand = dht * zg;
        // dh_prev direct term (1 - z); gate paths added below.
        dhr[j] = dht * (1.0 - zg);

        const double dcand_pre = dcand * (1.0 - cand * cand);
        dzr[2 * h_ + j] = dcand_pre;
        dzr[j] = dzg * zg * (1.0 - zg);
        // dr needs the candidate pre-activation path: handled after we
        // know dcand_pre for all j (requires Whh row sums per k below).
        dzr[h_ + j] = 0.0;  // filled next loop
      }
      // Candidate recurrent path: d(r ⊙ h)_k = sum_j dcand_pre_j Whh[k][j].
      for (std::size_t k = 0; k < h_; ++k) {
        const double s =
            kernels::dot(dzr + 2 * h_, wh + k * 3 * h_ + 2 * h_, h_);
        const double rk = g[h_ + k];
        // through r: dr_k = s * h_prev_k; through h_prev: += s * r_k.
        dzr[h_ + k] = s * hp[k] * rk * (1.0 - rk);
        dhr[k] += s * rk;
      }
      // z and r recurrent paths into dh_prev.
      for (std::size_t k = 0; k < h_; ++k) {
        dhr[k] += kernels::dot(dzr, wh + k * 3 * h_, 2 * h_);
      }
      // Parameter gradients.
      const double* xr = st.x->row(r).data();
      for (std::size_t j = 0; j < 3 * h_; ++j) grads[b_off + j] += dzr[j];
      kernels::outer_acc(xr, f_, dzr, 3 * h_, grads.data() + wx_off);
      for (std::size_t k = 0; k < h_; ++k) {
        double* gp = grads.data() + wh_off + k * 3 * h_;
        kernels::axpy(hp[k], dzr, gp, 2 * h_);
        const double rh = st.gates(r, h_ + k) * hp[k];  // (r ⊙ h)_k
        kernels::axpy(rh, dzr + 2 * h_, gp + 2 * h_, h_);
      }
    }
  }
}

double GruRegressor::train_batch(const std::vector<Matrix>& xs,
                                 const Matrix& y, LossKind loss,
                                 Optimizer& opt, double clip_norm) {
  const Matrix& pred = forward(xs);
  const double value = loss_value(loss, pred, y);
  loss_grad(loss, pred, y, grad_out_scratch_);

  // assign() reuses the arena's capacity after the first batch — the
  // steady-state train loop performs no gradient-buffer allocation.
  grads_scratch_.assign(params_.size(), 0.0);
  std::vector<double>& grads = grads_scratch_;
  backward(grad_out_scratch_, grads);

  if (clip_norm > 0.0) {
    const double sq = kernels::dot(grads.data(), grads.data(), grads.size());
    const double norm = std::sqrt(sq);
    if (norm > clip_norm) {
      const double scale = clip_norm / norm;
      for (double& g : grads) g *= scale;
    }
  }
  opt.step(params_, grads);
  kernels::note_train_batch();
  return value;
}

}  // namespace pfdrl::nn
