#include "nn/activation.hpp"

#include <cassert>
#include <cmath>

namespace pfdrl::nn {

double activate(Activation a, double x) noexcept {
  switch (a) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
  }
  return x;
}

double activate_grad_from_output(Activation a, double y) noexcept {
  switch (a) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid: return y * (1.0 - y);
    case Activation::kTanh: return 1.0 - y * y;
  }
  return 1.0;
}

void activate_inplace(Activation a, Matrix& m) {
  if (a == Activation::kIdentity) return;
  for (double& x : m.data()) x = activate(a, x);
}

void scale_by_activation_grad(Activation a, const Matrix& y, Matrix& grad) {
  assert(y.rows() == grad.rows() && y.cols() == grad.cols());
  if (a == Activation::kIdentity) return;
  auto ys = y.data();
  auto gs = grad.data();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    gs[i] *= activate_grad_from_output(a, ys[i]);
  }
}

const char* activation_name(Activation a) noexcept {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
  }
  return "?";
}

}  // namespace pfdrl::nn
