#include "nn/activation.hpp"

#include <cassert>
#include <cmath>
#include <span>

namespace pfdrl::nn {

double activate(Activation a, double x) noexcept {
  switch (a) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
  }
  return x;
}

double activate_grad_from_output(Activation a, double y) noexcept {
  switch (a) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid: return y * (1.0 - y);
    case Activation::kTanh: return 1.0 - y * y;
  }
  return 1.0;
}

namespace {
// grad[i] *= g(y[i]) with the gradient functor inlined per element.
template <class G>
void scale_elems(std::span<const double> ys, std::span<double> gs, G&& g) {
  for (std::size_t i = 0; i < gs.size(); ++i) gs[i] *= g(ys[i]);
}
}  // namespace

// Both kernels dispatch on the activation kind once per matrix and hand
// Matrix::apply / scale_elems a concrete lambda — same math as the
// per-element activate()/activate_grad_from_output() switches, minus the
// per-element branch.
void activate_inplace(Activation a, Matrix& m) {
  switch (a) {
    case Activation::kIdentity: return;
    case Activation::kRelu:
      m.apply([](double x) noexcept { return x > 0.0 ? x : 0.0; });
      return;
    case Activation::kSigmoid:
      m.apply([](double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); });
      return;
    case Activation::kTanh:
      m.apply([](double x) noexcept { return std::tanh(x); });
      return;
  }
}

void scale_by_activation_grad(Activation a, const Matrix& y, Matrix& grad) {
  assert(y.rows() == grad.rows() && y.cols() == grad.cols());
  auto ys = y.data();
  auto gs = grad.data();
  switch (a) {
    case Activation::kIdentity: return;
    case Activation::kRelu:
      scale_elems(ys, gs, [](double v) noexcept { return v > 0.0 ? 1.0 : 0.0; });
      return;
    case Activation::kSigmoid:
      scale_elems(ys, gs, [](double v) noexcept { return v * (1.0 - v); });
      return;
    case Activation::kTanh:
      scale_elems(ys, gs, [](double v) noexcept { return 1.0 - v * v; });
      return;
  }
}

// Row ranges of a row-major matrix are contiguous, so the fused-slice
// variants run the same elementwise kernels over a subspan.
void activate_rows(Activation a, Matrix& m, std::size_t row_begin,
                   std::size_t rows) {
  assert(row_begin + rows <= m.rows());
  if (rows == 0 || a == Activation::kIdentity) return;
  const auto xs = m.data().subspan(row_begin * m.cols(), rows * m.cols());
  switch (a) {
    case Activation::kIdentity: return;
    case Activation::kRelu:
      for (double& x : xs) x = x > 0.0 ? x : 0.0;
      return;
    case Activation::kSigmoid:
      for (double& x : xs) x = 1.0 / (1.0 + std::exp(-x));
      return;
    case Activation::kTanh:
      for (double& x : xs) x = std::tanh(x);
      return;
  }
}

void scale_by_activation_grad_rows(Activation a, const Matrix& y, Matrix& grad,
                                   std::size_t row_begin, std::size_t rows) {
  assert(y.rows() == grad.rows() && y.cols() == grad.cols());
  assert(row_begin + rows <= y.rows());
  if (rows == 0 || a == Activation::kIdentity) return;
  const auto ys = y.data().subspan(row_begin * y.cols(), rows * y.cols());
  const auto gs = grad.data().subspan(row_begin * y.cols(), rows * y.cols());
  switch (a) {
    case Activation::kIdentity: return;
    case Activation::kRelu:
      scale_elems(ys, gs, [](double v) noexcept { return v > 0.0 ? 1.0 : 0.0; });
      return;
    case Activation::kSigmoid:
      scale_elems(ys, gs, [](double v) noexcept { return v * (1.0 - v); });
      return;
    case Activation::kTanh:
      scale_elems(ys, gs, [](double v) noexcept { return 1.0 - v * v; });
      return;
  }
}

const char* activation_name(Activation a) noexcept {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
  }
  return "?";
}

}  // namespace pfdrl::nn
