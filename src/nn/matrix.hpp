// Dense row-major matrix with the small set of BLAS-like kernels the
// library needs: blocked (and optionally thread-pooled) matmul, transposed
// variants for backprop, axpy-style updates, and elementwise maps.
//
// Double precision throughout: the federated averaging math (Eq. 2/7 in
// the paper) is sensitive to accumulation order, and doubles keep the
// deterministic chunked reductions well below test tolerances.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace pfdrl::nn {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::size_t rows, std::size_t cols, double fill);
  /// From nested initializer list (row major); all rows must have equal
  /// length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  void fill(double v) noexcept;
  void zero() noexcept { fill(0.0); }

  /// Change geometry in place, reusing the existing heap buffer whenever
  /// its capacity suffices (the capacity never shrinks). Element values
  /// after a reshape are unspecified — callers must fully overwrite.
  /// Returns the number of heap bytes newly acquired (0 when the buffer
  /// was reused), which is what nn::Workspace folds into its process-wide
  /// growth counters.
  std::size_t reshape(std::size_t rows, std::size_t cols);
  /// Heap capacity in elements (>= size()).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return data_.capacity();
  }

  /// this += other (shapes must match).
  Matrix& operator+=(const Matrix& other);
  /// this -= other (shapes must match).
  Matrix& operator-=(const Matrix& other);
  /// this *= scalar.
  Matrix& operator*=(double s) noexcept;
  /// this += alpha * other (shapes must match).
  void axpy(double alpha, const Matrix& other);

  /// Elementwise map in place. The functor is a template parameter so the
  /// per-element call inlines — activation kernels dispatch on the
  /// activation kind once per matrix, not once per element through a
  /// type-erased indirection. (A std::function overload used to exist;
  /// every call site binds a concrete lambda, so it was deleted.)
  template <class F>
  void apply(F&& f) {
    for (double& x : data_) x = f(x);
  }

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm squared.
  [[nodiscard]] double squared_norm() const noexcept;

  friend bool operator==(const Matrix& a, const Matrix& b) noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. ikj loop order through the branch-free nn::kernels::axpy
/// (broadcast a[i][k] against b's contiguous row k); when `threaded` and
/// the output is large enough, rows are sharded across the global thread
/// pool. Results are bitwise identical either way: each output element is
/// produced by exactly one thread as a single accumulator walked in
/// ascending-k order — the invariant the golden tests pin.
/// If `out` aliases `a` or `b` the product is computed into a temporary
/// first (silent corruption otherwise), at the cost of one allocation.
void matmul(const Matrix& a, const Matrix& b, Matrix& out,
            bool threaded = false);
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b,
                            bool threaded = false);

/// out = a^T * b without materializing the transpose.
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a * b^T without materializing the transpose. Each output element
/// is one strip-mined nn::kernels::dot (4-lane reduction, fixed combine
/// order — deterministic run-to-run, see kernels.hpp).
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out(r, :) += bias for every row r (bias is 1 x cols).
void add_row_vector(Matrix& m, const Matrix& bias);
/// Column-wise sum of m into out (1 x cols).
void sum_rows(const Matrix& m, Matrix& out);

}  // namespace pfdrl::nn
