// Regression losses with analytic gradients. The DQN uses Huber loss as
// in the paper ("acts quadratic for small errors and linear for large
// errors"); forecasters use MSE by default and expose the others for the
// ablation benches.
#pragma once

#include "nn/matrix.hpp"

namespace pfdrl::nn {

enum class LossKind { kMse, kMae, kHuber };

/// Mean loss over all elements of (pred, target); shapes must match.
double loss_value(LossKind kind, const Matrix& pred, const Matrix& target,
                  double huber_delta = 1.0);

/// d(mean loss)/d(pred) into `grad` (resized to pred's shape).
void loss_grad(LossKind kind, const Matrix& pred, const Matrix& target,
               Matrix& grad, double huber_delta = 1.0);

/// Mean loss over the row range [row_begin, row_begin + rows) only — the
/// fused cross-home path normalizes each home's slab slice by its own
/// element count, so the value is bitwise identical to loss_value over
/// that home's standalone batch (rows are contiguous and iterated in the
/// same ascending element order).
double loss_value_rows(LossKind kind, const Matrix& pred,
                       const Matrix& target, std::size_t row_begin,
                       std::size_t rows, double huber_delta = 1.0);

/// loss_grad over the row range [row_begin, row_begin + rows): writes
/// d(mean slice loss)/d(pred) into the same rows of `grad` (which must
/// already have pred's shape) and leaves the other rows untouched.
void loss_grad_rows(LossKind kind, const Matrix& pred, const Matrix& target,
                    std::size_t row_begin, std::size_t rows, Matrix& grad,
                    double huber_delta = 1.0);

/// Split-begin variants: pred rows start at `pred_row_begin`, target rows
/// at `target_row_begin` (the fused trainers' epoch arenas hold targets
/// at an arena offset while predictions live in batch-local slabs). Both
/// iterate the identical ascending element order as the same-begin
/// forms, so values and gradients stay bitwise unchanged.
double loss_value_rows(LossKind kind, const Matrix& pred,
                       std::size_t pred_row_begin, const Matrix& target,
                       std::size_t target_row_begin, std::size_t rows,
                       double huber_delta = 1.0);
void loss_grad_rows(LossKind kind, const Matrix& pred,
                    std::size_t pred_row_begin, const Matrix& target,
                    std::size_t target_row_begin, std::size_t rows,
                    Matrix& grad, double huber_delta = 1.0);

/// Scalar Huber loss (exposed for tests and the RL temporal-difference
/// error path, which operates on single Q-values).
double huber(double error, double delta = 1.0) noexcept;
double huber_grad(double error, double delta = 1.0) noexcept;

const char* loss_name(LossKind kind) noexcept;

}  // namespace pfdrl::nn
