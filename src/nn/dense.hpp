// Span-based dense-layer kernels plus a small self-contained DenseLayer.
//
// The MLP (mlp.hpp) stores all parameters of all layers in one flat
// buffer and calls these kernels with per-layer slices; that layout is
// what makes PFDRL's base/personalization split (paper §3.3.2) a simple
// prefix/suffix of the flat vector.
//
// Weight layout for a layer with `in` inputs and `out` outputs:
//   W: in*out doubles, row-major with input-index major (W[k][j]),
//   b: out doubles,
// packed contiguously as [W | b] (size in*out + out).
#pragma once

#include <cstddef>
#include <span>

#include "nn/activation.hpp"
#include "nn/init.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {

/// Number of parameters for a dense layer of the given shape.
constexpr std::size_t dense_param_count(std::size_t in, std::size_t out) {
  return in * out + out;
}

/// y = act(x * W + b).
/// x: batch x in; y: batch x out (reshaped in place, reusing capacity);
/// params: [W|b]. Batch-1 inputs dispatch to matvec1 below.
void dense_forward(std::span<const double> params, std::size_t in,
                   std::size_t out, const Matrix& x, Activation act,
                   Matrix& y);

/// Batch-1 kernel: y[j] = b[j] + sum_k x[k] * W[k][j] (no activation).
/// Branch-free inner loop, four outputs per pass with one register
/// accumulator each; every output is accumulated in ascending-k order,
/// so results are bitwise identical to the batched dense_forward row
/// kernel (which skips x[k] == 0 terms — those contribute exactly +0.0).
/// This is the per-decision hot path of the EMS loop: one call per layer
/// per DQN decision, millions of times per multi-home run.
void matvec1(std::span<const double> w, std::span<const double> b,
             std::span<const double> x, std::size_t in, std::size_t out,
             std::span<double> y) noexcept;

/// Backward pass. `y` is the cached forward output, `grad_y` the incoming
/// gradient dL/dy (modified in place into the pre-activation delta).
/// Writes dL/d[W|b] into `grad_params` (accumulating: +=) and dL/dx into
/// `grad_x` (overwritten; pass nullptr to skip for the first layer).
void dense_backward(std::span<const double> params, std::size_t in,
                    std::size_t out, const Matrix& x, const Matrix& y,
                    Activation act, Matrix& grad_y,
                    std::span<double> grad_params, Matrix* grad_x);

/// Initialize a packed [W|b] slice: weights per `scheme`, bias zero.
void dense_init(std::span<double> params, std::size_t in, std::size_t out,
                InitScheme scheme, util::Rng& rng);

/// A standalone dense layer owning its parameters. Used by unit tests and
/// by small models that do not need federated slicing.
class DenseLayer {
 public:
  DenseLayer(std::size_t in, std::size_t out, Activation act,
             InitScheme scheme, util::Rng& rng);

  [[nodiscard]] std::size_t in_dim() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_dim() const noexcept { return out_; }
  [[nodiscard]] Activation activation() const noexcept { return act_; }

  /// Forward with caching for a subsequent backward().
  const Matrix& forward(const Matrix& x);
  /// Backward; returns dL/dx. Must follow a forward() with the same batch.
  Matrix backward(Matrix grad_y);

  [[nodiscard]] std::span<double> parameters() noexcept { return params_; }
  [[nodiscard]] std::span<const double> parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] std::span<double> gradients() noexcept { return grads_; }
  void zero_grad() noexcept;

 private:
  std::size_t in_, out_;
  Activation act_;
  std::vector<double> params_;
  std::vector<double> grads_;
  Matrix input_;   // cached forward input
  Matrix output_;  // cached forward output
};

}  // namespace pfdrl::nn
