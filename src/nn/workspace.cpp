#include "nn/workspace.hpp"

#include <atomic>

namespace pfdrl::nn {

namespace {
// Process-wide growth telemetry. Relaxed atomics: the counters are read
// by the obs exporter between rounds, never used for synchronization.
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes{0};
}  // namespace

Workspace::~Workspace() {
  g_bytes.fetch_sub(bytes_, std::memory_order_relaxed);
}

Matrix& Workspace::take(std::size_t rows, std::size_t cols) {
  if (next_ == slots_.size()) {
    slots_.push_back(std::make_unique<Matrix>());
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  Matrix& m = *slots_[next_++];
  const std::size_t grown = m.reshape(rows, cols);
  if (grown > 0) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(grown, std::memory_order_relaxed);
    bytes_ += grown;
  }
  return m;
}

std::uint64_t Workspace::total_allocations() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

std::uint64_t Workspace::total_bytes() noexcept {
  return g_bytes.load(std::memory_order_relaxed);
}

}  // namespace pfdrl::nn
