#include "nn/kernels.hpp"

#include <atomic>
#include <cmath>

#include "nn/fused.hpp"

#if defined(__AVX2__) && defined(PFDRL_HAVE_LIBMVEC)
#include <immintrin.h>
// glibc's x86-64 vector-math entry points (4-wide double, AVX2 width).
// The 'dN4v' signature takes one ymm argument and returns one ymm, which
// is exactly the SysV calling convention for (__m256d) -> __m256d, so a
// plain extern declaration binds them. Declared here rather than via
// math.h's simd pragmas because those only activate under -ffast-math,
// which this project must not enable (it licenses reassociation and
// would void the kernel determinism contract).
extern "C" {
__m256d _ZGVdN4v_exp(__m256d);   // NOLINT(readability-identifier-naming)
__m256d _ZGVdN4v_tanh(__m256d);  // NOLINT(readability-identifier-naming)
}
#define PFDRL_VECTOR_MATH 1
#endif

namespace pfdrl::nn::kernels {

namespace {

std::atomic<std::uint64_t> g_train_batches{0};

// Kept out-of-line and noinline so the compiler must emit the expression
// as written instead of constant-folding it: with -ffp-contract=off this
// is round(a*b) + c; with contraction it becomes fma(a, b, c).
[[gnu::noinline]] double mul_add_probe(double a, double b, double c) noexcept {
  return a * b + c;
}

}  // namespace

void sigmoid_inplace(double* x, std::size_t n) noexcept {
  std::size_t j = 0;
#ifdef PFDRL_VECTOR_MATH
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  for (; j + kLanes <= n; j += kLanes) {
    const __m256d v = _mm256_loadu_pd(x + j);
    const __m256d e = _ZGVdN4v_exp(_mm256_sub_pd(zero, v));
    _mm256_storeu_pd(x + j, _mm256_div_pd(one, _mm256_add_pd(one, e)));
  }
#endif
  for (; j < n; ++j) x[j] = 1.0 / (1.0 + std::exp(-x[j]));
}

void tanh_inplace(double* x, std::size_t n) noexcept {
  std::size_t j = 0;
#ifdef PFDRL_VECTOR_MATH
  for (; j + kLanes <= n; j += kLanes) {
    _mm256_storeu_pd(x + j, _ZGVdN4v_tanh(_mm256_loadu_pd(x + j)));
  }
#endif
  for (; j < n; ++j) x[j] = std::tanh(x[j]);
}

bool vector_math_active() noexcept {
#ifdef PFDRL_VECTOR_MATH
  return true;
#else
  return false;
#endif
}

bool fp_contraction_active() noexcept {
  // a² = 1 + 2⁻²⁶ + 2⁻⁵⁴ needs 54 fraction bits, so the product is
  // inexact in double. Without contraction the probe computes
  // round(a²) - round(a²) = 0 exactly; a fused multiply-add keeps the
  // low bits and returns the (nonzero) rounding error instead.
  volatile double v = 1.0 + 0x1p-27;
  const double a = v;
  const double rounded = a * a;
  return mul_add_probe(a, a, -rounded) != 0.0;
}

std::uint64_t total_train_batches() noexcept {
  return g_train_batches.load(std::memory_order_relaxed);
}

void note_train_batch() noexcept {
  g_train_batches.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pfdrl::nn::kernels

// Fused-batch telemetry (declared in nn/fused.hpp). Defined here, next
// to the train-batch counter, so translation units that link metrics
// recording without the fused engines (the sanitizer stress jobs build
// kernels.cpp + metrics.cpp directly) still resolve these symbols.
namespace pfdrl::nn {

namespace {
std::atomic<std::uint64_t> g_fused_batches{0};
std::atomic<std::uint64_t> g_fused_rows{0};
std::atomic<std::uint64_t> g_fused_members_hw{0};
}  // namespace

void note_fused_batch(std::size_t members, std::size_t rows) noexcept {
  g_fused_batches.fetch_add(1, std::memory_order_relaxed);
  g_fused_rows.fetch_add(rows, std::memory_order_relaxed);
  std::uint64_t hw = g_fused_members_hw.load(std::memory_order_relaxed);
  while (members > hw && !g_fused_members_hw.compare_exchange_weak(
                             hw, members, std::memory_order_relaxed)) {
  }
}

std::uint64_t total_fused_batches() noexcept {
  return g_fused_batches.load(std::memory_order_relaxed);
}
std::uint64_t total_fused_rows() noexcept {
  return g_fused_rows.load(std::memory_order_relaxed);
}
std::uint64_t max_fused_members() noexcept {
  return g_fused_members_hw.load(std::memory_order_relaxed);
}

}  // namespace pfdrl::nn
