// Strip-mined, branch-free inner-loop kernels for the training hot path.
//
// Every dense/recurrent loop in the library reduces to three primitives:
//
//   dot(x, y, n)        — reduction over n products;
//   axpy(a, x, y, n)    — y[j] += a * x[j] (no reduction);
//   outer_acc(x, d, g)  — g[k][j] += x[k] * d[j] (rows of axpy).
//
// The old kernels guarded each k-term with `if (x[k] == 0.0) continue;`
// (profitable for sparse ReLU activations, fatal for auto-vectorization:
// the branch makes every lane control-dependent). These kernels drop the
// branch — a zero term contributes exactly +0.0, so for axpy/outer_acc
// the results are bitwise unchanged — and strip-mine the *reduction*
// kernel into kLanes = 4 independent lane accumulators that a compiler
// maps onto one 256-bit vector register.
//
// Determinism contract (what the golden tests re-pinned against):
//   * dot combines its lanes in the fixed order ((l0+l1)+(l2+l3)) + tail,
//     where lane m sums terms k ≡ m (mod 4) in ascending k and the tail
//     (n mod 4 trailing terms) is summed sequentially after the lanes.
//     The result depends only on (x, y, n) — never on threading, call
//     site, or repetition — so runs are bitwise reproducible.
//   * axpy/outer_acc perform per-element independent updates in ascending
//     j; they are bitwise identical to the scalar reference.
//   * Builds pin -ffp-contract=off (see the top-level CMakeLists): FMA
//     contraction would re-round differently per compiler and silently
//     break cross-toolchain reproducibility. fp_contraction_active()
//     detects a dropped flag at runtime; a ctest guards it.
//
// The pre-vectorization scalar kernels survive as nn::ref (ref.hpp); an
// equivalence sweep bounds |kernels - ref| at 1e-12 relative error across
// the shape grid the LSTM/GRU gate math uses.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace pfdrl::nn::kernels {

/// Lane count of the strip-mined reduction (one AVX2 register of
/// doubles). Fixed: changing it changes reduction order, which requires
/// a golden re-bless (docs/performance.md).
inline constexpr std::size_t kLanes = 4;

/// Strip-mined dot product over n elements. Fixed combine order:
/// ((l0 + l1) + (l2 + l3)) + tail (see file header).
[[nodiscard]] inline double dot(const double* x, const double* y,
                                std::size_t n) noexcept {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    l0 += x[k] * y[k];
    l1 += x[k + 1] * y[k + 1];
    l2 += x[k + 2] * y[k + 2];
    l3 += x[k + 3] * y[k + 3];
  }
  double tail = 0.0;
  for (; k < n; ++k) tail += x[k] * y[k];
  return ((l0 + l1) + (l2 + l3)) + tail;
}

/// y[j] += a * x[j] for j in [0, n). Branch-free; x and y must not
/// overlap (all call sites pass disjoint parameter/scratch buffers).
inline void axpy(double a, const double* __restrict x, double* __restrict y,
                 std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) y[j] += a * x[j];
}

/// Outer-product accumulate: g[k * n + j] += x[k] * d[j] for k in [0, m),
/// j in [0, n). g must not overlap x or d.
inline void outer_acc(const double* __restrict x, std::size_t m,
                      const double* __restrict d, std::size_t n,
                      double* __restrict g) noexcept {
  for (std::size_t k = 0; k < m; ++k) axpy(x[k], d, g + k * n, n);
}

/// Row block width of the fused cross-home kernels below. Four rows share
/// one weight stream: a register tile of kRowBlock x (a few columns)
/// accumulators turns the per-row axpy read-modify-write sweeps into
/// load-once/store-once tiles. Unlike kLanes this is not a reduction
/// order knob — the fused kernels keep every output element a single
/// accumulator, so changing it would not require a golden re-bless.
inline constexpr std::size_t kRowBlock = 4;

/// Fused-batch accumulate for a block of kRowBlock rows sharing one
/// weight matrix: z[r][j] += sum_k x[r][k] * w[k * w_stride + j] for
/// j in [0, n), with each (r, j) element a SINGLE accumulator initialized
/// from the stored z value and advanced in ascending k. That is exactly
/// the rounding sequence of running axpy(x[r][k], w + k * w_stride,
/// z[r], n) over k for each row separately — so the fused training path
/// is bitwise identical to the per-home path (docs/fused_training.md) —
/// while the weight row is streamed once per 4 rows and z is touched
/// twice per tile instead of once per k-term.
/// `w_stride` >= n lets callers accumulate into a column window of a
/// wider gate matrix (the GRU candidate block). x rows, w and z rows must
/// not overlap.
inline void fused_acc_rows(const double* const* x, std::size_t m,
                           const double* w, std::size_t w_stride,
                           double* const* z, std::size_t n) noexcept {
#if defined(__AVX2__)
  // Explicit mul-then-add intrinsics (never fmadd): per element the
  // arithmetic sequence is exactly the scalar path's, lanes are
  // independent elements, so this is bitwise the generic code below.
  // Spelled out because the 4x8 accumulator tile must live in ymm
  // registers; the scalar-array form spills under -ffp-contract=off.
  {
    const double* __restrict x0 = x[0];
    const double* __restrict x1 = x[1];
    const double* __restrict x2 = x[2];
    const double* __restrict x3 = x[3];
    double* __restrict z0 = z[0];
    double* __restrict z1 = z[1];
    double* __restrict z2 = z[2];
    double* __restrict z3 = z[3];
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256d a00 = _mm256_loadu_pd(z0 + j), a01 = _mm256_loadu_pd(z0 + j + 4);
      __m256d a10 = _mm256_loadu_pd(z1 + j), a11 = _mm256_loadu_pd(z1 + j + 4);
      __m256d a20 = _mm256_loadu_pd(z2 + j), a21 = _mm256_loadu_pd(z2 + j + 4);
      __m256d a30 = _mm256_loadu_pd(z3 + j), a31 = _mm256_loadu_pd(z3 + j + 4);
      const double* wk = w + j;
      for (std::size_t k = 0; k < m; ++k, wk += w_stride) {
        const __m256d w0 = _mm256_loadu_pd(wk);
        const __m256d w1 = _mm256_loadu_pd(wk + 4);
        __m256d b = _mm256_set1_pd(x0[k]);
        a00 = _mm256_add_pd(a00, _mm256_mul_pd(b, w0));
        a01 = _mm256_add_pd(a01, _mm256_mul_pd(b, w1));
        b = _mm256_set1_pd(x1[k]);
        a10 = _mm256_add_pd(a10, _mm256_mul_pd(b, w0));
        a11 = _mm256_add_pd(a11, _mm256_mul_pd(b, w1));
        b = _mm256_set1_pd(x2[k]);
        a20 = _mm256_add_pd(a20, _mm256_mul_pd(b, w0));
        a21 = _mm256_add_pd(a21, _mm256_mul_pd(b, w1));
        b = _mm256_set1_pd(x3[k]);
        a30 = _mm256_add_pd(a30, _mm256_mul_pd(b, w0));
        a31 = _mm256_add_pd(a31, _mm256_mul_pd(b, w1));
      }
      _mm256_storeu_pd(z0 + j, a00);
      _mm256_storeu_pd(z0 + j + 4, a01);
      _mm256_storeu_pd(z1 + j, a10);
      _mm256_storeu_pd(z1 + j + 4, a11);
      _mm256_storeu_pd(z2 + j, a20);
      _mm256_storeu_pd(z2 + j + 4, a21);
      _mm256_storeu_pd(z3 + j, a30);
      _mm256_storeu_pd(z3 + j + 4, a31);
    }
    for (; j < n; ++j) {
      double a0 = z0[j], a1 = z1[j], a2 = z2[j], a3 = z3[j];
      const double* wk = w + j;
      for (std::size_t k = 0; k < m; ++k, wk += w_stride) {
        const double wv = *wk;
        a0 += x0[k] * wv;
        a1 += x1[k] * wv;
        a2 += x2[k] * wv;
        a3 += x3[k] * wv;
      }
      z0[j] = a0;
      z1[j] = a1;
      z2[j] = a2;
      z3[j] = a3;
    }
    return;
  }
#endif
  const double* __restrict x0 = x[0];
  const double* __restrict x1 = x[1];
  const double* __restrict x2 = x[2];
  const double* __restrict x3 = x[3];
  double* __restrict z0 = z[0];
  double* __restrict z1 = z[1];
  double* __restrict z2 = z[2];
  double* __restrict z3 = z[3];
  constexpr std::size_t kTile = 8;  // 2 AVX2 registers of doubles per row
  std::size_t j = 0;
  for (; j + kTile <= n; j += kTile) {
    double a0[kTile], a1[kTile], a2[kTile], a3[kTile];
    for (std::size_t t = 0; t < kTile; ++t) {
      a0[t] = z0[j + t];
      a1[t] = z1[j + t];
      a2[t] = z2[j + t];
      a3[t] = z3[j + t];
    }
    const double* wk = w + j;
    for (std::size_t k = 0; k < m; ++k, wk += w_stride) {
      const double b0 = x0[k], b1 = x1[k], b2 = x2[k], b3 = x3[k];
      for (std::size_t t = 0; t < kTile; ++t) {
        const double wv = wk[t];
        a0[t] += b0 * wv;
        a1[t] += b1 * wv;
        a2[t] += b2 * wv;
        a3[t] += b3 * wv;
      }
    }
    for (std::size_t t = 0; t < kTile; ++t) {
      z0[j + t] = a0[t];
      z1[j + t] = a1[t];
      z2[j + t] = a2[t];
      z3[j + t] = a3[t];
    }
  }
  for (; j < n; ++j) {
    double a0 = z0[j], a1 = z1[j], a2 = z2[j], a3 = z3[j];
    const double* wk = w + j;
    for (std::size_t k = 0; k < m; ++k, wk += w_stride) {
      const double wv = *wk;
      a0 += x0[k] * wv;
      a1 += x1[k] * wv;
      a2 += x2[k] * wv;
      a3 += x3[k] * wv;
    }
    z0[j] = a0;
    z1[j] = a1;
    z2[j] = a2;
    z3[j] = a3;
  }
}

/// Fused outer-product accumulate for a block of kRowBlock rows into one
/// shared gradient matrix: g[k * g_stride + j] += x[r][k] * d[r][j],
/// applied for r = 0..3 as SEQUENTIAL separate roundings in ascending r
/// per element — bitwise identical to calling outer_acc(x[r], m, d[r],
/// n, g) for each row in order, with g loaded and stored once per
/// element instead of once per row.
inline void fused_outer_acc_rows(const double* const* x, std::size_t m,
                                 const double* const* d, std::size_t n,
                                 double* g, std::size_t g_stride) noexcept {
#if defined(__AVX2__)
  // Same mul-then-add element order as the generic path (r ascending
  // per element), vectorized 4 columns wide.
  {
    const double* __restrict d0 = d[0];
    const double* __restrict d1 = d[1];
    const double* __restrict d2 = d[2];
    const double* __restrict d3 = d[3];
    for (std::size_t k = 0; k < m; ++k) {
      double* __restrict gk = g + k * g_stride;
      const __m256d b0 = _mm256_set1_pd(x[0][k]);
      const __m256d b1 = _mm256_set1_pd(x[1][k]);
      const __m256d b2 = _mm256_set1_pd(x[2][k]);
      const __m256d b3 = _mm256_set1_pd(x[3][k]);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        __m256d acc = _mm256_loadu_pd(gk + j);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(b0, _mm256_loadu_pd(d0 + j)));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(b1, _mm256_loadu_pd(d1 + j)));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(b2, _mm256_loadu_pd(d2 + j)));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(b3, _mm256_loadu_pd(d3 + j)));
        _mm256_storeu_pd(gk + j, acc);
      }
      const double s0 = x[0][k], s1 = x[1][k], s2 = x[2][k], s3 = x[3][k];
      for (; j < n; ++j) {
        double acc = gk[j];
        acc += s0 * d0[j];
        acc += s1 * d1[j];
        acc += s2 * d2[j];
        acc += s3 * d3[j];
        gk[j] = acc;
      }
    }
    return;
  }
#endif
  const double* __restrict d0 = d[0];
  const double* __restrict d1 = d[1];
  const double* __restrict d2 = d[2];
  const double* __restrict d3 = d[3];
  for (std::size_t k = 0; k < m; ++k) {
    double* __restrict gk = g + k * g_stride;
    const double b0 = x[0][k], b1 = x[1][k], b2 = x[2][k], b3 = x[3][k];
    for (std::size_t j = 0; j < n; ++j) {
      double acc = gk[j];
      acc += b0 * d0[j];
      acc += b1 * d1[j];
      acc += b2 * d2[j];
      acc += b3 * d3[j];
      gk[j] = acc;
    }
  }
}

/// Fused bias accumulate: b[j] += d[r][j] for r = 0..3 as sequential
/// separate roundings in ascending r — bitwise identical to the per-row
/// bias loops it replaces.
/// Full gate-preactivation tile for a block of kRowBlock rows:
/// z[r][j] = b[j] + sum_k x[r][k] * wx[k * w_stride + j]
///                + sum_k hp[r][k] * wh[k * w_stride + j]
/// with every (r, j) element one accumulator initialized from the bias
/// and advanced wx terms first then wh terms, each in ascending k — the
/// exact rounding sequence of writing the bias row and running the two
/// axpy sweeps separately. The AVX2 path keeps the whole 4x8 tile in
/// registers across BOTH weight passes, so z is stored exactly once per
/// tile instead of round-tripping between the bias fill and each
/// accumulate pass. Pass hm == 0 to skip the second matrix (dense
/// layers).
inline void fused_gates_rows(const double* b, const double* const* x,
                             std::size_t fm, const double* wx,
                             const double* const* hp, std::size_t hm,
                             const double* wh, std::size_t w_stride,
                             double* const* z, std::size_t n) noexcept {
#if defined(__AVX2__)
  {
    const double* __restrict x0 = x[0];
    const double* __restrict x1 = x[1];
    const double* __restrict x2 = x[2];
    const double* __restrict x3 = x[3];
    double* __restrict z0 = z[0];
    double* __restrict z1 = z[1];
    double* __restrict z2 = z[2];
    double* __restrict z3 = z[3];
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256d b0 = _mm256_loadu_pd(b + j);
      const __m256d b1 = _mm256_loadu_pd(b + j + 4);
      __m256d a00 = b0, a01 = b1;
      __m256d a10 = b0, a11 = b1;
      __m256d a20 = b0, a21 = b1;
      __m256d a30 = b0, a31 = b1;
      const double* wk = wx + j;
      for (std::size_t k = 0; k < fm; ++k, wk += w_stride) {
        const __m256d w0 = _mm256_loadu_pd(wk);
        const __m256d w1 = _mm256_loadu_pd(wk + 4);
        __m256d s = _mm256_set1_pd(x0[k]);
        a00 = _mm256_add_pd(a00, _mm256_mul_pd(s, w0));
        a01 = _mm256_add_pd(a01, _mm256_mul_pd(s, w1));
        s = _mm256_set1_pd(x1[k]);
        a10 = _mm256_add_pd(a10, _mm256_mul_pd(s, w0));
        a11 = _mm256_add_pd(a11, _mm256_mul_pd(s, w1));
        s = _mm256_set1_pd(x2[k]);
        a20 = _mm256_add_pd(a20, _mm256_mul_pd(s, w0));
        a21 = _mm256_add_pd(a21, _mm256_mul_pd(s, w1));
        s = _mm256_set1_pd(x3[k]);
        a30 = _mm256_add_pd(a30, _mm256_mul_pd(s, w0));
        a31 = _mm256_add_pd(a31, _mm256_mul_pd(s, w1));
      }
      if (hm != 0) {
        const double* __restrict h0 = hp[0];
        const double* __restrict h1 = hp[1];
        const double* __restrict h2 = hp[2];
        const double* __restrict h3 = hp[3];
        const double* whk = wh + j;
        for (std::size_t k = 0; k < hm; ++k, whk += w_stride) {
          const __m256d w0 = _mm256_loadu_pd(whk);
          const __m256d w1 = _mm256_loadu_pd(whk + 4);
          __m256d s = _mm256_set1_pd(h0[k]);
          a00 = _mm256_add_pd(a00, _mm256_mul_pd(s, w0));
          a01 = _mm256_add_pd(a01, _mm256_mul_pd(s, w1));
          s = _mm256_set1_pd(h1[k]);
          a10 = _mm256_add_pd(a10, _mm256_mul_pd(s, w0));
          a11 = _mm256_add_pd(a11, _mm256_mul_pd(s, w1));
          s = _mm256_set1_pd(h2[k]);
          a20 = _mm256_add_pd(a20, _mm256_mul_pd(s, w0));
          a21 = _mm256_add_pd(a21, _mm256_mul_pd(s, w1));
          s = _mm256_set1_pd(h3[k]);
          a30 = _mm256_add_pd(a30, _mm256_mul_pd(s, w0));
          a31 = _mm256_add_pd(a31, _mm256_mul_pd(s, w1));
        }
      }
      _mm256_storeu_pd(z0 + j, a00);
      _mm256_storeu_pd(z0 + j + 4, a01);
      _mm256_storeu_pd(z1 + j, a10);
      _mm256_storeu_pd(z1 + j + 4, a11);
      _mm256_storeu_pd(z2 + j, a20);
      _mm256_storeu_pd(z2 + j + 4, a21);
      _mm256_storeu_pd(z3 + j, a30);
      _mm256_storeu_pd(z3 + j + 4, a31);
    }
    for (; j < n; ++j) {
      double a0 = b[j], a1 = b[j], a2 = b[j], a3 = b[j];
      const double* wk = wx + j;
      for (std::size_t k = 0; k < fm; ++k, wk += w_stride) {
        const double wv = *wk;
        a0 += x0[k] * wv;
        a1 += x1[k] * wv;
        a2 += x2[k] * wv;
        a3 += x3[k] * wv;
      }
      if (hm != 0) {
        const double* whk = wh + j;
        for (std::size_t k = 0; k < hm; ++k, whk += w_stride) {
          const double wv = *whk;
          a0 += hp[0][k] * wv;
          a1 += hp[1][k] * wv;
          a2 += hp[2][k] * wv;
          a3 += hp[3][k] * wv;
        }
      }
      z0[j] = a0;
      z1[j] = a1;
      z2[j] = a2;
      z3[j] = a3;
    }
    return;
  }
#endif
  for (std::size_t r = 0; r < kRowBlock; ++r) {
    for (std::size_t j = 0; j < n; ++j) z[r][j] = b[j];
  }
  fused_acc_rows(x, fm, wx, w_stride, z, n);
  if (hm != 0) fused_acc_rows(hp, hm, wh, w_stride, z, n);
}

/// Four dot products sharing one right-hand vector: out[r] =
/// dot(d[r], y, n) for r = 0..3, with each dot using the EXACT lane
/// decomposition and combine order of kernels::dot — lane m sums terms
/// k = m (mod 4) in ascending k, combined as ((l0 + l1) + (l2 + l3)) +
/// tail — so the results are bitwise identical to four dot() calls
/// while y is streamed once instead of four times.
inline void fused_dot_rows(const double* const* d, const double* y,
                           std::size_t n, double* out) noexcept {
#if defined(__AVX2__)
  {
    const double* __restrict d0 = d[0];
    const double* __restrict d1 = d[1];
    const double* __restrict d2 = d[2];
    const double* __restrict d3 = d[3];
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    std::size_t k = 0;
    for (; k + kLanes <= n; k += kLanes) {
      const __m256d yv = _mm256_loadu_pd(y + k);
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(d0 + k), yv));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(d1 + k), yv));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(d2 + k), yv));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(d3 + k), yv));
    }
    // Combine lanes in dot()'s fixed order: ((l0 + l1) + (l2 + l3)).
    alignas(32) double l[kLanes];
    const __m256d acc[kRowBlock] = {a0, a1, a2, a3};
    for (std::size_t r = 0; r < kRowBlock; ++r) {
      _mm256_store_pd(l, acc[r]);
      double v = (l[0] + l[1]) + (l[2] + l[3]);
      double tail = 0.0;
      for (std::size_t t = k; t < n; ++t) tail += d[r][t] * y[t];
      out[r] = v + tail;
    }
    return;
  }
#endif
  for (std::size_t r = 0; r < kRowBlock; ++r) out[r] = dot(d[r], y, n);
}

inline void fused_bias_acc_rows(const double* const* d, std::size_t n,
                                double* b) noexcept {
#if defined(__AVX2__)
  {
    const double* __restrict d0 = d[0];
    const double* __restrict d1 = d[1];
    const double* __restrict d2 = d[2];
    const double* __restrict d3 = d[3];
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(b + j);
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(d0 + j));
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(d1 + j));
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(d2 + j));
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(d3 + j));
      _mm256_storeu_pd(b + j, acc);
    }
    for (; j < n; ++j) {
      double acc = b[j];
      acc += d0[j];
      acc += d1[j];
      acc += d2[j];
      acc += d3[j];
      b[j] = acc;
    }
    return;
  }
#endif
  const double* __restrict d0 = d[0];
  const double* __restrict d1 = d[1];
  const double* __restrict d2 = d[2];
  const double* __restrict d3 = d[3];
  for (std::size_t j = 0; j < n; ++j) {
    double acc = b[j];
    acc += d0[j];
    acc += d1[j];
    acc += d2[j];
    acc += d3[j];
    b[j] = acc;
  }
}

/// x[j] = 1 / (1 + exp(-x[j])) for j in [0, n). Batched so the whole
/// gate slice goes through one call: with libmvec available (see
/// vector_math_active()) groups of kLanes elements run through the
/// 4-wide vector exp and the n mod kLanes tail stays scalar. The result
/// for a given (contents, n) is identical on every call — position in
/// the batch is fixed, so runs stay bitwise reproducible per build —
/// but the vector and scalar builds differ by a few ulp (glibc bounds
/// libmvec at 4 ulp), which is why recurrent-model expectations are
/// tolerance-based, never bitwise across build configurations.
void sigmoid_inplace(double* x, std::size_t n) noexcept;

/// x[j] = tanh(x[j]) for j in [0, n). Same batching and determinism
/// contract as sigmoid_inplace.
void tanh_inplace(double* x, std::size_t n) noexcept;

/// True when sigmoid_inplace/tanh_inplace were compiled against libmvec
/// (AVX2 ISA + glibc vector math present at configure time). Exported by
/// the obs layer as the `nn.kernel_vector_math` gauge so run artifacts
/// record which transcendental path produced them.
[[nodiscard]] bool vector_math_active() noexcept;

/// True when the compiler contracted a * b + c into an FMA — i.e. the
/// -ffp-contract=off pin was dropped. Evaluated on the library's own
/// translation unit so it tests the flags the kernels were built with.
[[nodiscard]] bool fp_contraction_active() noexcept;

/// Process-wide count of train_batch invocations through the kernel
/// layer (LSTM/GRU BPTT and MLP batches). Exported by the obs layer as
/// `nn.kernel_train_batches`; one relaxed atomic add per batch, so the
/// telemetry costs nothing the inner loops can feel.
[[nodiscard]] std::uint64_t total_train_batches() noexcept;
/// Bump the train-batch counter (called once per train_batch).
void note_train_batch() noexcept;

}  // namespace pfdrl::nn::kernels
