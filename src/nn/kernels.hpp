// Strip-mined, branch-free inner-loop kernels for the training hot path.
//
// Every dense/recurrent loop in the library reduces to three primitives:
//
//   dot(x, y, n)        — reduction over n products;
//   axpy(a, x, y, n)    — y[j] += a * x[j] (no reduction);
//   outer_acc(x, d, g)  — g[k][j] += x[k] * d[j] (rows of axpy).
//
// The old kernels guarded each k-term with `if (x[k] == 0.0) continue;`
// (profitable for sparse ReLU activations, fatal for auto-vectorization:
// the branch makes every lane control-dependent). These kernels drop the
// branch — a zero term contributes exactly +0.0, so for axpy/outer_acc
// the results are bitwise unchanged — and strip-mine the *reduction*
// kernel into kLanes = 4 independent lane accumulators that a compiler
// maps onto one 256-bit vector register.
//
// Determinism contract (what the golden tests re-pinned against):
//   * dot combines its lanes in the fixed order ((l0+l1)+(l2+l3)) + tail,
//     where lane m sums terms k ≡ m (mod 4) in ascending k and the tail
//     (n mod 4 trailing terms) is summed sequentially after the lanes.
//     The result depends only on (x, y, n) — never on threading, call
//     site, or repetition — so runs are bitwise reproducible.
//   * axpy/outer_acc perform per-element independent updates in ascending
//     j; they are bitwise identical to the scalar reference.
//   * Builds pin -ffp-contract=off (see the top-level CMakeLists): FMA
//     contraction would re-round differently per compiler and silently
//     break cross-toolchain reproducibility. fp_contraction_active()
//     detects a dropped flag at runtime; a ctest guards it.
//
// The pre-vectorization scalar kernels survive as nn::ref (ref.hpp); an
// equivalence sweep bounds |kernels - ref| at 1e-12 relative error across
// the shape grid the LSTM/GRU gate math uses.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pfdrl::nn::kernels {

/// Lane count of the strip-mined reduction (one AVX2 register of
/// doubles). Fixed: changing it changes reduction order, which requires
/// a golden re-bless (docs/performance.md).
inline constexpr std::size_t kLanes = 4;

/// Strip-mined dot product over n elements. Fixed combine order:
/// ((l0 + l1) + (l2 + l3)) + tail (see file header).
[[nodiscard]] inline double dot(const double* x, const double* y,
                                std::size_t n) noexcept {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    l0 += x[k] * y[k];
    l1 += x[k + 1] * y[k + 1];
    l2 += x[k + 2] * y[k + 2];
    l3 += x[k + 3] * y[k + 3];
  }
  double tail = 0.0;
  for (; k < n; ++k) tail += x[k] * y[k];
  return ((l0 + l1) + (l2 + l3)) + tail;
}

/// y[j] += a * x[j] for j in [0, n). Branch-free; x and y must not
/// overlap (all call sites pass disjoint parameter/scratch buffers).
inline void axpy(double a, const double* __restrict x, double* __restrict y,
                 std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) y[j] += a * x[j];
}

/// Outer-product accumulate: g[k * n + j] += x[k] * d[j] for k in [0, m),
/// j in [0, n). g must not overlap x or d.
inline void outer_acc(const double* __restrict x, std::size_t m,
                      const double* __restrict d, std::size_t n,
                      double* __restrict g) noexcept {
  for (std::size_t k = 0; k < m; ++k) axpy(x[k], d, g + k * n, n);
}

/// x[j] = 1 / (1 + exp(-x[j])) for j in [0, n). Batched so the whole
/// gate slice goes through one call: with libmvec available (see
/// vector_math_active()) groups of kLanes elements run through the
/// 4-wide vector exp and the n mod kLanes tail stays scalar. The result
/// for a given (contents, n) is identical on every call — position in
/// the batch is fixed, so runs stay bitwise reproducible per build —
/// but the vector and scalar builds differ by a few ulp (glibc bounds
/// libmvec at 4 ulp), which is why recurrent-model expectations are
/// tolerance-based, never bitwise across build configurations.
void sigmoid_inplace(double* x, std::size_t n) noexcept;

/// x[j] = tanh(x[j]) for j in [0, n). Same batching and determinism
/// contract as sigmoid_inplace.
void tanh_inplace(double* x, std::size_t n) noexcept;

/// True when sigmoid_inplace/tanh_inplace were compiled against libmvec
/// (AVX2 ISA + glibc vector math present at configure time). Exported by
/// the obs layer as the `nn.kernel_vector_math` gauge so run artifacts
/// record which transcendental path produced them.
[[nodiscard]] bool vector_math_active() noexcept;

/// True when the compiler contracted a * b + c into an FMA — i.e. the
/// -ffp-contract=off pin was dropped. Evaluated on the library's own
/// translation unit so it tests the flags the kernels were built with.
[[nodiscard]] bool fp_contraction_active() noexcept;

/// Process-wide count of train_batch invocations through the kernel
/// layer (LSTM/GRU BPTT and MLP batches). Exported by the obs layer as
/// `nn.kernel_train_batches`; one relaxed atomic add per batch, so the
/// telemetry costs nothing the inner loops can feel.
[[nodiscard]] std::uint64_t total_train_batches() noexcept;
/// Bump the train-batch counter (called once per train_batch).
void note_train_batch() noexcept;

}  // namespace pfdrl::nn::kernels
