// Multi-layer perceptron with all parameters in a single flat buffer.
//
// Layer i occupies the contiguous slice [layer_offset(i),
// layer_offset(i) + layer_param_count(i)). PFDRL's personalization split
// (paper §3.3.2, Eq. 7/8) treats layers [0, alpha) as federated "base"
// layers and the rest as local "personalization" layers; with this layout
// that is exactly the flat prefix [0, layer_offset(alpha)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {

class Workspace;

class Mlp {
 public:
  /// dims = {input, hidden..., output}; at least {in, out}.
  /// Hidden layers use `hidden_act`, the final layer `output_act`.
  Mlp(std::vector<std::size_t> dims, Activation hidden_act,
      Activation output_act, InitScheme scheme, util::Rng& rng);

  /// Number of dense layers (dims.size() - 1).
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return dims_.size() - 1;
  }
  [[nodiscard]] std::size_t input_dim() const noexcept { return dims_.front(); }
  [[nodiscard]] std::size_t output_dim() const noexcept { return dims_.back(); }
  [[nodiscard]] const std::vector<std::size_t>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] Activation hidden_activation() const noexcept {
    return hidden_act_;
  }
  [[nodiscard]] Activation output_activation() const noexcept {
    return output_act_;
  }

  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return params_.size();
  }
  [[nodiscard]] std::span<double> parameters() noexcept { return params_; }
  [[nodiscard]] std::span<const double> parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] std::span<double> gradients() noexcept { return grads_; }
  [[nodiscard]] std::span<const double> gradients() const noexcept {
    return grads_;
  }

  /// Flat offset of layer i's slice; layer_offset(num_layers()) is the
  /// total parameter count, so [offset(a), offset(b)) spans layers [a, b).
  [[nodiscard]] std::size_t layer_offset(std::size_t i) const noexcept {
    return offsets_[i];
  }
  [[nodiscard]] std::size_t layer_param_count(std::size_t i) const noexcept {
    return offsets_[i + 1] - offsets_[i];
  }
  [[nodiscard]] std::span<double> layer_parameters(std::size_t i) noexcept {
    return std::span(params_).subspan(offsets_[i], layer_param_count(i));
  }
  [[nodiscard]] std::span<const double> layer_parameters(
      std::size_t i) const noexcept {
    return std::span(params_).subspan(offsets_[i], layer_param_count(i));
  }

  /// Replace all parameters. Size must equal parameter_count().
  void set_parameters(std::span<const double> values);

  /// Forward pass with activation caching (required before backward()).
  /// The input is held by reference, not copied: `x` must stay alive and
  /// unmodified until the matching backward() completes.
  const Matrix& forward(const Matrix& x);
  /// Stateless inference (does not disturb the training caches).
  /// Allocates per call; the hot path is the workspace overload below.
  [[nodiscard]] Matrix predict(const Matrix& x) const;
  /// Allocation-free inference: every per-layer activation lives in a
  /// workspace slot (one take() per layer, exact shapes, so steady-state
  /// repeats grow nothing). The returned reference points into `ws` and
  /// stays valid until the slot is recycled by a later reset()/take()
  /// cycle; it survives further take() calls within the same cycle.
  const Matrix& predict(const Matrix& x, Workspace& ws) const;

  void zero_grad() noexcept;
  /// Accumulate gradients for dL/d(output) = grad_out. Must follow
  /// forward() with the same batch. `grad_out` is consumed as scratch:
  /// its contents are unspecified on return (the layer sweep ping-pongs
  /// it against an internal buffer), but its heap allocation is preserved
  /// — callers that pass a pooled matrix keep their capacity.
  void backward(Matrix& grad_out);

  /// Convenience: forward + loss + backward + optimizer step over one
  /// mini-batch. Returns the batch loss.
  double train_batch(const Matrix& x, const Matrix& y, LossKind loss,
                     Optimizer& opt, double huber_delta = 1.0);

  /// Structural equality of shapes (same dims/activations) — a
  /// precondition for federated parameter exchange.
  [[nodiscard]] bool same_architecture(const Mlp& other) const noexcept;

 private:
  std::vector<std::size_t> dims_;
  Activation hidden_act_;
  Activation output_act_;
  std::vector<std::size_t> offsets_;  // per-layer flat offsets, + total
  std::vector<double> params_;
  std::vector<double> grads_;
  // Forward caches: acts_[i] is layer i's output (1-based; the input is
  // *viewed* through input_, never deep-copied — see forward()).
  std::vector<Matrix> acts_;
  const Matrix* input_ = nullptr;
  // Backward ping-pong scratch, kept to preserve capacity across batches.
  Matrix grad_scratch_;
  // Loss-gradient buffer for train_batch, reused across batches.
  Matrix loss_grad_scratch_;

  /// Layer i's input: the forward() argument for i == 0, else the cached
  /// activation of the previous layer.
  [[nodiscard]] const Matrix& layer_input(std::size_t i) const noexcept {
    return i == 0 ? *input_ : acts_[i];
  }

  [[nodiscard]] Activation layer_act(std::size_t i) const noexcept {
    return i + 1 == num_layers() ? output_act_ : hidden_act_;
  }
};

}  // namespace pfdrl::nn
