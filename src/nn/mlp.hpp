// Multi-layer perceptron with all parameters in a single flat buffer.
//
// Layer i occupies the contiguous slice [layer_offset(i),
// layer_offset(i) + layer_param_count(i)). PFDRL's personalization split
// (paper §3.3.2, Eq. 7/8) treats layers [0, alpha) as federated "base"
// layers and the rest as local "personalization" layers; with this layout
// that is exactly the flat prefix [0, layer_offset(alpha)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {

class Mlp {
 public:
  /// dims = {input, hidden..., output}; at least {in, out}.
  /// Hidden layers use `hidden_act`, the final layer `output_act`.
  Mlp(std::vector<std::size_t> dims, Activation hidden_act,
      Activation output_act, InitScheme scheme, util::Rng& rng);

  /// Number of dense layers (dims.size() - 1).
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return dims_.size() - 1;
  }
  [[nodiscard]] std::size_t input_dim() const noexcept { return dims_.front(); }
  [[nodiscard]] std::size_t output_dim() const noexcept { return dims_.back(); }
  [[nodiscard]] const std::vector<std::size_t>& dims() const noexcept {
    return dims_;
  }

  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return params_.size();
  }
  [[nodiscard]] std::span<double> parameters() noexcept { return params_; }
  [[nodiscard]] std::span<const double> parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] std::span<double> gradients() noexcept { return grads_; }
  [[nodiscard]] std::span<const double> gradients() const noexcept {
    return grads_;
  }

  /// Flat offset of layer i's slice; layer_offset(num_layers()) is the
  /// total parameter count, so [offset(a), offset(b)) spans layers [a, b).
  [[nodiscard]] std::size_t layer_offset(std::size_t i) const noexcept {
    return offsets_[i];
  }
  [[nodiscard]] std::size_t layer_param_count(std::size_t i) const noexcept {
    return offsets_[i + 1] - offsets_[i];
  }
  [[nodiscard]] std::span<double> layer_parameters(std::size_t i) noexcept {
    return std::span(params_).subspan(offsets_[i], layer_param_count(i));
  }
  [[nodiscard]] std::span<const double> layer_parameters(
      std::size_t i) const noexcept {
    return std::span(params_).subspan(offsets_[i], layer_param_count(i));
  }

  /// Replace all parameters. Size must equal parameter_count().
  void set_parameters(std::span<const double> values);

  /// Forward pass with activation caching (required before backward()).
  const Matrix& forward(const Matrix& x);
  /// Stateless inference (does not disturb the training caches).
  [[nodiscard]] Matrix predict(const Matrix& x) const;

  void zero_grad() noexcept;
  /// Accumulate gradients for dL/d(output) = grad_out. Must follow
  /// forward() with the same batch.
  void backward(Matrix grad_out);

  /// Convenience: forward + loss + backward + optimizer step over one
  /// mini-batch. Returns the batch loss.
  double train_batch(const Matrix& x, const Matrix& y, LossKind loss,
                     Optimizer& opt, double huber_delta = 1.0);

  /// Structural equality of shapes (same dims/activations) — a
  /// precondition for federated parameter exchange.
  [[nodiscard]] bool same_architecture(const Mlp& other) const noexcept;

 private:
  std::vector<std::size_t> dims_;
  Activation hidden_act_;
  Activation output_act_;
  std::vector<std::size_t> offsets_;  // per-layer flat offsets, + total
  std::vector<double> params_;
  std::vector<double> grads_;
  // Forward caches: acts_[0] is the input, acts_[i+1] layer i's output.
  std::vector<Matrix> acts_;

  [[nodiscard]] Activation layer_act(std::size_t i) const noexcept {
    return i + 1 == num_layers() ? output_act_ : hidden_act_;
  }
};

}  // namespace pfdrl::nn
