#include "nn/fused.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/gru.hpp"
#include "nn/kernels.hpp"
#include "nn/lstm.hpp"
#include "nn/mlp.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::nn {

namespace {

constexpr std::size_t kRB = kernels::kRowBlock;

/// Row pointers of a block of kRB consecutive slab rows.
template <class M>
void block_rows(M& m, std::size_t r, double* out[kRB]) noexcept {
  for (std::size_t i = 0; i < kRB; ++i) out[i] = m.row(r + i).data();
}
template <class M>
void block_rows_const(const M& m, std::size_t r,
                      const double* out[kRB]) noexcept {
  for (std::size_t i = 0; i < kRB; ++i) out[i] = m.row(r + i).data();
}

/// Dense head rows for one slice: out[r] = b + h_last[r] * W. Identical
/// per-row loop to LstmRegressor::head_into / GruRegressor::head_into.
void head_slice(const double* w, const double* b, std::size_t h,
                std::size_t o, const Matrix& h_last, Matrix& out,
                const FusedSlice& s) {
  for (std::size_t r = s.row_begin; r < s.row_begin + s.rows; ++r) {
    const double* hr = h_last.row(r).data();
    double* yr = out.row(r).data();
    for (std::size_t j = 0; j < o; ++j) yr[j] = b[j];
    for (std::size_t k = 0; k < h; ++k) {
      kernels::axpy(hr[k], w + k * o, yr, o);
    }
  }
}

/// Head backward for one slice: per-row bias/outer accumulation into the
/// member's head gradients and dh[r][k] = dot(grad_out[r], W_head row k).
/// Identical per-row loop to the recurrent models' head backward.
void head_backward_slice(const double* w, std::size_t h, std::size_t o,
                         const Matrix& grad_out, const Matrix& h_last,
                         Matrix& dh, double* gw_head, double* gb_head,
                         const FusedSlice& s) {
  for (std::size_t r = s.row_begin; r < s.row_begin + s.rows; ++r) {
    const double* go = grad_out.row(r).data();
    const double* hr = h_last.row(r).data();
    double* dhr = dh.row(r).data();
    for (std::size_t j = 0; j < o; ++j) gb_head[j] += go[j];
    kernels::outer_acc(hr, h, go, o, gw_head);
    for (std::size_t k = 0; k < h; ++k) {
      dhr[k] = kernels::dot(go, w + k * o, o);
    }
  }
}

/// Member's fused-vs-per-home uniformity is the caller's contract; the
/// slices must tile [0, rows) of the slab in order.
void check_slices(std::span<const FusedSlice> slices, std::size_t rows) {
  std::size_t at = 0;
  for (const FusedSlice& s : slices) {
    if (s.row_begin != at) {
      throw std::invalid_argument("fused: slices must tile the slab in order");
    }
    at += s.rows;
  }
  if (at != rows) {
    throw std::invalid_argument("fused: slices must cover every slab row");
  }
}

// ---------------------------------------------------------------- LSTM --

struct LstmOffsets {
  std::size_t wx, wh, b, w_head, b_head, total;
};

LstmOffsets lstm_offsets(std::size_t f, std::size_t h, std::size_t o) {
  LstmOffsets ofs{};
  ofs.wx = 0;
  ofs.wh = f * 4 * h;
  ofs.b = ofs.wh + h * 4 * h;
  ofs.w_head = ofs.b + 4 * h;
  ofs.b_head = ofs.w_head + h * o;
  ofs.total = ofs.b_head + o;
  return ofs;
}

/// LSTM backward Phase-1 elementwise deltas for one row — the exact
/// per-element op sequence of LstmRegressor::backward. kHasCPrev lifts
/// the t == 0 check out of the loop: the body is branch-free either way
/// (cp folds to 0.0 at t == 0, preserving the signed-zero products of
/// the scalar code), so the compiler can vectorize the j loop.
template <bool kHasCPrev>
void lstm_phase1_row(const double* __restrict zg, const double* __restrict tc,
                     const double* __restrict cpr, double* __restrict dhr,
                     double* __restrict dcr, double* __restrict dzr,
                     std::size_t h) {
  for (std::size_t j = 0; j < h; ++j) {
    const double i_g = zg[j];
    const double f_g = zg[h + j];
    const double g_g = zg[2 * h + j];
    const double o_g = zg[3 * h + j];
    const double cp = kHasCPrev ? cpr[j] : 0.0;

    const double do_g = dhr[j] * tc[j];
    dcr[j] += dhr[j] * o_g * (1.0 - tc[j] * tc[j]);
    const double di = dcr[j] * g_g;
    const double df = dcr[j] * cp;
    const double dg = dcr[j] * i_g;

    dzr[j] = di * i_g * (1.0 - i_g);
    dzr[h + j] = df * f_g * (1.0 - f_g);
    dzr[2 * h + j] = dg * (1.0 - g_g * g_g);
    dzr[3 * h + j] = do_g * o_g * (1.0 - o_g);

    dcr[j] *= f_g;
  }
}

/// One LSTM step over one slice's rows: blocked gate preactivation, then
/// the per-row nonlinearity/state-update sequence of step_compute.
/// `x_row0` offsets the rows read from x (the forecast epoch arena); the
/// state slabs stay batch-local.
void lstm_step_slice(const double* pwx, const double* pwh, const double* pb,
                     std::size_t f, std::size_t h, const Matrix& x,
                     std::size_t x_row0, const Matrix& h_prev,
                     const Matrix& c_prev, Matrix& gates, Matrix& c,
                     Matrix& tanh_c, Matrix& hm, const FusedSlice& s) {
  const std::size_t g4 = 4 * h;
  const std::size_t r_end = s.row_begin + s.rows;
  std::size_t r = s.row_begin;
  for (; r + kRB <= r_end; r += kRB) {
    double* zr[kRB];
    const double* xr[kRB];
    const double* hr[kRB];
    block_rows(gates, r, zr);
    block_rows_const(x, x_row0 + r, xr);
    block_rows_const(h_prev, r, hr);
    kernels::fused_gates_rows(pb, xr, f, pwx, hr, h, pwh, g4, zr, g4);
  }
  for (; r < r_end; ++r) {
    double* z = gates.row(r).data();
    for (std::size_t j = 0; j < g4; ++j) z[j] = pb[j];
    const double* xr = x.row(x_row0 + r).data();
    for (std::size_t k = 0; k < f; ++k) {
      kernels::axpy(xr[k], pwx + k * g4, z, g4);
    }
    const double* hr = h_prev.row(r).data();
    for (std::size_t k = 0; k < h; ++k) {
      kernels::axpy(hr[k], pwh + k * g4, z, g4);
    }
  }
  for (r = s.row_begin; r < r_end; ++r) {
    double* z = gates.row(r).data();
    kernels::sigmoid_inplace(z, 2 * h);
    kernels::tanh_inplace(z + 2 * h, h);
    kernels::sigmoid_inplace(z + 3 * h, h);
    const double* cprev = c_prev.row(r).data();
    double* cr = c.row(r).data();
    double* tc = tanh_c.row(r).data();
    double* hv = hm.row(r).data();
    for (std::size_t j = 0; j < h; ++j) {
      cr[j] = z[h + j] * cprev[j] + z[j] * z[2 * h + j];
      tc[j] = cr[j];
    }
    kernels::tanh_inplace(tc, h);
    for (std::size_t j = 0; j < h; ++j) hv[j] = z[3 * h + j] * tc[j];
  }
}

// ----------------------------------------------------------------- GRU --

struct GruOffsets {
  std::size_t wx, wh, b, w_head, b_head, total;
};

GruOffsets gru_offsets(std::size_t f, std::size_t h, std::size_t o) {
  GruOffsets ofs{};
  ofs.wx = 0;
  ofs.wh = f * 3 * h;
  ofs.b = ofs.wh + h * 3 * h;
  ofs.w_head = ofs.b + 3 * h;
  ofs.b_head = ofs.w_head + h * o;
  ofs.total = ofs.b_head + o;
  return ofs;
}

/// One GRU step over one slice's rows. `x_row0` offsets the rows read
/// from x, as in lstm_step_slice. The bias fill + input matrix ride the
/// specialized fused_gates_rows register tile (its generic fallback is
/// literally that bias-fill + fused_acc_rows sequence, so the swap is
/// bitwise free); the recurrent matrix cannot join the same call because
/// it only feeds the z/r gate columns until (r ⊙ h) is known.
void gru_step_slice(const double* pwx, const double* pwh, const double* pb,
                    std::size_t f, std::size_t h, const Matrix& x,
                    std::size_t x_row0, const Matrix& h_prev, Matrix& gates,
                    Matrix& hm, Matrix& coeff, std::size_t coeff_base,
                    const FusedSlice& s) {
  const std::size_t g3 = 3 * h;
  const std::size_t r_end = s.row_begin + s.rows;
  std::size_t r = s.row_begin;
  for (; r + kRB <= r_end; r += kRB) {
    double* zr[kRB];
    const double* xr[kRB];
    const double* hp[kRB];
    block_rows(gates, r, zr);
    block_rows_const(x, x_row0 + r, xr);
    block_rows_const(h_prev, r, hp);
    kernels::fused_gates_rows(pb, xr, f, pwx, nullptr, 0, nullptr, g3, zr,
                              g3);
    // z and r gates see h directly; candidate comes after r is known.
    kernels::fused_acc_rows(hp, h, pwh, g3, zr, 2 * h);
    for (std::size_t i = 0; i < kRB; ++i) {
      kernels::sigmoid_inplace(zr[i], 2 * h);
    }
    // Candidate pre-activation gets (r ⊙ h): the coefficient product is
    // the same single rounding the per-home axpy computes inline.
    double* cf[kRB];
    double* zc[kRB];
    const double* cf_const[kRB];
    for (std::size_t i = 0; i < kRB; ++i) {
      cf[i] = coeff.row(coeff_base + i).data();
      zc[i] = zr[i] + 2 * h;
      cf_const[i] = cf[i];
      for (std::size_t k = 0; k < h; ++k) cf[i][k] = zr[i][h + k] * hp[i][k];
    }
    kernels::fused_acc_rows(cf_const, h, pwh + 2 * h, g3, zc, h);
    for (std::size_t i = 0; i < kRB; ++i) {
      kernels::tanh_inplace(zc[i], h);
      double* hv = hm.row(r + i).data();
      for (std::size_t j = 0; j < h; ++j) {
        const double zg = zr[i][j];
        hv[j] = (1.0 - zg) * hp[i][j] + zg * zr[i][2 * h + j];
      }
    }
  }
  for (; r < r_end; ++r) {
    double* z = gates.row(r).data();
    for (std::size_t j = 0; j < g3; ++j) z[j] = pb[j];
    const double* xr = x.row(x_row0 + r).data();
    for (std::size_t k = 0; k < f; ++k) {
      kernels::axpy(xr[k], pwx + k * g3, z, g3);
    }
    const double* hp = h_prev.row(r).data();
    for (std::size_t k = 0; k < h; ++k) {
      kernels::axpy(hp[k], pwh + k * g3, z, 2 * h);
    }
    kernels::sigmoid_inplace(z, 2 * h);
    for (std::size_t k = 0; k < h; ++k) {
      kernels::axpy(z[h + k] * hp[k], pwh + k * g3 + 2 * h, z + 2 * h, h);
    }
    kernels::tanh_inplace(z + 2 * h, h);
    double* hv = hm.row(r).data();
    for (std::size_t j = 0; j < h; ++j) {
      const double zg = z[j];
      hv[j] = (1.0 - zg) * hp[j] + zg * z[2 * h + j];
    }
  }
}

// ----------------------------------------------------------------- MLP --

/// Blocked dense forward preactivation for one slice (activation applies
/// slab-wide afterwards). Matches the batched dense_forward row kernel;
/// the per-home batch-1 matvec1 dispatch is bitwise identical to it by
/// the dense.hpp contract, so slicing never changes results. `in_row0`
/// offsets the rows read from x (nonzero only for the input layer when
/// the batch lives inside an epoch arena).
void dense_forward_slice(std::span<const double> params, std::size_t in,
                         std::size_t out, const Matrix& x, std::size_t in_row0,
                         Matrix& y, const FusedSlice& s) {
  const double* w = params.data();
  const double* b = params.data() + in * out;
  const std::size_t r_end = s.row_begin + s.rows;
  std::size_t r = s.row_begin;
  for (; r + kRB <= r_end; r += kRB) {
    double* yr[kRB];
    const double* xr[kRB];
    block_rows(y, r, yr);
    block_rows_const(x, in_row0 + r, xr);
    kernels::fused_gates_rows(b, xr, in, w, nullptr, 0, nullptr, out, yr, out);
  }
  for (; r < r_end; ++r) {
    const double* xr = x.row(in_row0 + r).data();
    double* yr = y.row(r).data();
    for (std::size_t j = 0; j < out; ++j) yr[j] = b[j];
    for (std::size_t k = 0; k < in; ++k) {
      kernels::axpy(xr[k], w + k * out, yr, out);
    }
  }
}

/// Blocked dense backward for one slice: bias/weight gradients into the
/// member's own gradient slice, dL/dx rows into grad_x. `grad_y` must
/// already hold the pre-activation delta (the caller scales the slab
/// once — element-independent, so slab-wide equals per-slice).
void dense_backward_slice(std::span<const double> params, std::size_t in,
                          std::size_t out, const Matrix& x,
                          std::size_t in_row0, const Matrix& grad_y,
                          std::span<double> grad_params, Matrix* grad_x,
                          const FusedSlice& s) {
  double* gw = grad_params.data();
  double* gb = grad_params.data() + in * out;
  const double* w = params.data();
  const std::size_t r_end = s.row_begin + s.rows;
  std::size_t r = s.row_begin;
  for (; r + kRB <= r_end; r += kRB) {
    const double* dr[kRB];
    const double* xr[kRB];
    block_rows_const(grad_y, r, dr);
    block_rows_const(x, in_row0 + r, xr);
    kernels::fused_bias_acc_rows(dr, out, gb);
    kernels::fused_outer_acc_rows(xr, in, dr, out, gw, out);
    if (grad_x != nullptr) {
      double* gx[kRB];
      block_rows(*grad_x, r, gx);
      double dots[kRB];
      for (std::size_t k = 0; k < in; ++k) {
        kernels::fused_dot_rows(dr, w + k * out, out, dots);
        for (std::size_t i = 0; i < kRB; ++i) gx[i][k] = dots[i];
      }
    }
  }
  for (; r < r_end; ++r) {
    const double* xr = x.row(in_row0 + r).data();
    const double* dr = grad_y.row(r).data();
    for (std::size_t j = 0; j < out; ++j) gb[j] += dr[j];
    kernels::outer_acc(xr, in, dr, out, gw);
    if (grad_x != nullptr) {
      double* gxr = grad_x->row(r).data();
      for (std::size_t k = 0; k < in; ++k) {
        gxr[k] = kernels::dot(dr, w + k * out, out);
      }
    }
  }
}

}  // namespace

// note_fused_batch and the fused telemetry getters live in kernels.cpp
// next to the train-batch counter, so the sanitizer stress jobs (which
// rebuild kernels.cpp + metrics.cpp without this file) still link.

// ------------------------------------------------------------ FusedLstm --

void FusedLstm::train_batch(std::span<LstmRegressor* const> nets,
                            std::span<const FusedSlice> slices,
                            std::span<const Matrix* const> xs, const Matrix& y,
                            LossKind loss, std::span<Optimizer* const> opts,
                            std::span<double> losses, double clip_norm,
                            std::size_t src_row0) {
  const std::size_t members = nets.size();
  if (members == 0 || xs.empty()) return;
  assert(slices.size() == members && opts.size() == members &&
         losses.size() == members);
  const std::size_t T = xs.size();
  std::size_t rows = 0;
  for (const FusedSlice& s : slices) rows += s.rows;
  check_slices(slices, rows);
  if (rows == 0) return;
  const LstmRegressor& n0 = *nets[0];
  const std::size_t f = n0.feature_dim();
  const std::size_t h = n0.hidden_dim();
  const std::size_t o = n0.output_dim();
  const LstmOffsets ofs = lstm_offsets(f, h, o);
  for (const LstmRegressor* n : nets) {
    if (n->feature_dim() != f || n->hidden_dim() != h ||
        n->output_dim() != o) {
      throw std::invalid_argument("FusedLstm: member shape mismatch");
    }
  }

  ws_.reset();
  gates_.resize(T);
  c_.resize(T);
  tanh_c_.resize(T);
  h_.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    gates_[t] = &ws_.take(rows, 4 * h);
    c_[t] = &ws_.take(rows, h);
    tanh_c_[t] = &ws_.take(rows, h);
    h_[t] = &ws_.take(rows, h);
  }
  Matrix& h0 = ws_.take(rows, h);
  Matrix& c0 = ws_.take(rows, h);
  Matrix& pred = ws_.take(rows, o);
  Matrix& grad_out = ws_.take(rows, o);
  Matrix& dh = ws_.take(rows, h);
  Matrix& dc = ws_.take(rows, h);
  Matrix& dz = ws_.take(rows, 4 * h);
  h0.zero();
  c0.zero();

#ifndef NDEBUG
  for (std::size_t t = 0; t < T; ++t) {
    assert(xs[t]->rows() >= src_row0 + rows && xs[t]->cols() == f);
  }
  assert(y.rows() >= src_row0 + rows);
#endif

  // ---- Member-major execution: one task per member runs its forward,
  // loss, BPTT, clip and Adam step over its own slice rows against its
  // own bank. Members share the activation/delta slabs but write
  // disjoint row ranges and never share an accumulator, so fanning the
  // members out across the pool cannot change any member's arithmetic —
  // the fused result stays bitwise the per-home one at every thread
  // count. Member-major order also keeps each bank hot in cache for the
  // whole sequence instead of re-streaming every bank per timestep.
  grads_.assign(members * ofs.total, 0.0);
  dc.zero();
  const auto member_task = [&](std::size_t i) {
    const FusedSlice& s = slices[i];
    const double* p = nets[i]->parameters().data();

    // ---- Forward: all T steps over this member's rows. ----
    for (std::size_t t = 0; t < T; ++t) {
      const Matrix& hp = t > 0 ? *h_[t - 1] : h0;
      const Matrix& cp = t > 0 ? *c_[t - 1] : c0;
      lstm_step_slice(p + ofs.wx, p + ofs.wh, p + ofs.b, f, h, *xs[t],
                      src_row0, hp, cp, *gates_[t], *c_[t], *tanh_c_[t],
                      *h_[t], s);
    }
    head_slice(p + ofs.w_head, p + ofs.b_head, h, o, *h_[T - 1], pred, s);

    // ---- Loss over this member's row range (targets sit at the arena
    // offset; predictions are batch-local). ----
    losses[i] = loss_value_rows(loss, pred, s.row_begin, y,
                                src_row0 + s.row_begin, s.rows);
    loss_grad_rows(loss, pred, s.row_begin, y, src_row0 + s.row_begin, s.rows,
                   grad_out);

    // ---- Backward: shared delta slabs, own gradient bank. ----
    double* g = grads_.data() + i * ofs.total;
    head_backward_slice(p + ofs.w_head, h, o, grad_out, *h_[T - 1], dh,
                        g + ofs.w_head, g + ofs.b_head, s);
    const double* pwh = p + ofs.wh;
    for (std::size_t t = T; t-- > 0;) {
      const Matrix& gates = *gates_[t];
      const Matrix& tanh_c = *tanh_c_[t];
      const Matrix* c_prev = t > 0 ? c_[t - 1] : nullptr;
      const Matrix& h_prev = t > 0 ? *h_[t - 1] : h0;
      const std::size_t r_end = s.row_begin + s.rows;
      // Phase 1 — elementwise deltas (identical scalar sequence per
      // row). The c_prev presence test is hoisted to a template
      // parameter so the j loop is branch-free and auto-vectorizes.
      for (std::size_t r = s.row_begin; r < r_end; ++r) {
        const double* zg = gates.row(r).data();
        const double* tc = tanh_c.row(r).data();
        double* dhr = dh.row(r).data();
        double* dcr = dc.row(r).data();
        double* dzr = dz.row(r).data();
        if (c_prev != nullptr) {
          lstm_phase1_row<true>(zg, tc, c_prev->row(r).data(), dhr, dcr, dzr,
                                h);
        } else {
          lstm_phase1_row<false>(zg, tc, nullptr, dhr, dcr, dzr, h);
        }
      }
      // Phase 2 — parameter gradients + dh_{t-1}, blocked.
      std::size_t r = s.row_begin;
      for (; r + kRB <= r_end; r += kRB) {
        const double* dzr[kRB];
        const double* xr[kRB];
        block_rows_const(dz, r, dzr);
        block_rows_const(*xs[t], src_row0 + r, xr);
        kernels::fused_bias_acc_rows(dzr, 4 * h, g + ofs.b);
        kernels::fused_outer_acc_rows(xr, f, dzr, 4 * h, g + ofs.wx, 4 * h);
        if (t > 0) {
          const double* hp[kRB];
          block_rows_const(h_prev, r, hp);
          kernels::fused_outer_acc_rows(hp, h, dzr, 4 * h, g + ofs.wh, 4 * h);
        }
        double* dhr[kRB];
        block_rows(dh, r, dhr);
        double dots[kRB];
        for (std::size_t k = 0; k < h; ++k) {
          kernels::fused_dot_rows(dzr, pwh + k * 4 * h, 4 * h, dots);
          for (std::size_t b = 0; b < kRB; ++b) dhr[b][k] = dots[b];
        }
      }
      for (; r < r_end; ++r) {
        const double* dzr = dz.row(r).data();
        const double* xr = xs[t]->row(src_row0 + r).data();
        for (std::size_t j = 0; j < 4 * h; ++j) g[ofs.b + j] += dzr[j];
        kernels::outer_acc(xr, f, dzr, 4 * h, g + ofs.wx);
        if (t > 0) {
          const double* hp = h_prev.row(r).data();
          kernels::outer_acc(hp, h, dzr, 4 * h, g + ofs.wh);
        }
        double* dhr = dh.row(r).data();
        for (std::size_t k = 0; k < h; ++k) {
          dhr[k] = kernels::dot(dzr, pwh + k * 4 * h, 4 * h);
        }
      }
    }

    // ---- Clip + Adam step (same sequence as train_batch). ----
    std::span<double> gspan(g, ofs.total);
    if (clip_norm > 0.0) {
      const double sq = kernels::dot(gspan.data(), gspan.data(), gspan.size());
      const double norm = std::sqrt(sq);
      if (norm > clip_norm) {
        const double scale = clip_norm / norm;
        for (double& gv : gspan) gv *= scale;
      }
    }
    opts[i]->step(nets[i]->parameters(), gspan);
    kernels::note_train_batch();
  };
  util::ThreadPool::global().parallel_for(0, members, member_task);
  note_fused_batch(members, rows);
}

// ------------------------------------------------------------- FusedGru --

void FusedGru::train_batch(std::span<GruRegressor* const> nets,
                           std::span<const FusedSlice> slices,
                           std::span<const Matrix* const> xs, const Matrix& y,
                           LossKind loss, std::span<Optimizer* const> opts,
                           std::span<double> losses, double clip_norm,
                           std::size_t src_row0) {
  const std::size_t members = nets.size();
  if (members == 0 || xs.empty()) return;
  assert(slices.size() == members && opts.size() == members &&
         losses.size() == members);
  const std::size_t T = xs.size();
  std::size_t rows = 0;
  for (const FusedSlice& s : slices) rows += s.rows;
  check_slices(slices, rows);
  if (rows == 0) return;
  const GruRegressor& n0 = *nets[0];
  const std::size_t f = n0.feature_dim();
  const std::size_t h = n0.hidden_dim();
  const std::size_t o = n0.output_dim();
  const GruOffsets ofs = gru_offsets(f, h, o);
  for (const GruRegressor* n : nets) {
    if (n->feature_dim() != f || n->hidden_dim() != h ||
        n->output_dim() != o) {
      throw std::invalid_argument("FusedGru: member shape mismatch");
    }
  }

  ws_.reset();
  gates_.resize(T);
  h_.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    gates_[t] = &ws_.take(rows, 3 * h);
    h_[t] = &ws_.take(rows, h);
  }
  Matrix& h0 = ws_.take(rows, h);
  Matrix& pred = ws_.take(rows, o);
  Matrix& grad_out = ws_.take(rows, o);
  Matrix& dh = ws_.take(rows, h);
  Matrix& dz = ws_.take(rows, 3 * h);
  // kRB (r ⊙ h) coefficient rows per member — member-private scratch.
  Matrix& coeff = ws_.take(members * kRB, h);
  h0.zero();

#ifndef NDEBUG
  for (std::size_t t = 0; t < T; ++t) {
    assert(xs[t]->rows() >= src_row0 + rows && xs[t]->cols() == f);
  }
  assert(y.rows() >= src_row0 + rows);
#endif

  // Member-major execution, same scheme (and same bitwise argument) as
  // FusedLstm::train_batch: disjoint slice rows, no shared accumulators,
  // members fan out across the pool.
  grads_.assign(members * ofs.total, 0.0);
  const auto member_task = [&](std::size_t i) {
    const FusedSlice& s = slices[i];
    const double* p = nets[i]->parameters().data();
    const std::size_t coeff_base = i * kRB;

    for (std::size_t t = 0; t < T; ++t) {
      const Matrix& hp = t > 0 ? *h_[t - 1] : h0;
      gru_step_slice(p + ofs.wx, p + ofs.wh, p + ofs.b, f, h, *xs[t],
                     src_row0, hp, *gates_[t], *h_[t], coeff, coeff_base, s);
    }
    head_slice(p + ofs.w_head, p + ofs.b_head, h, o, *h_[T - 1], pred, s);

    losses[i] = loss_value_rows(loss, pred, s.row_begin, y,
                                src_row0 + s.row_begin, s.rows);
    loss_grad_rows(loss, pred, s.row_begin, y, src_row0 + s.row_begin, s.rows,
                   grad_out);

    double* g = grads_.data() + i * ofs.total;
    head_backward_slice(p + ofs.w_head, h, o, grad_out, *h_[T - 1], dh,
                        g + ofs.w_head, g + ofs.b_head, s);
    const double* pwh = p + ofs.wh;
    for (std::size_t t = T; t-- > 0;) {
      const Matrix& gates = *gates_[t];
      const Matrix& h_prev = t > 0 ? *h_[t - 1] : h0;
      const std::size_t r_end = s.row_begin + s.rows;
      // Phase 1 — elementwise deltas and recurrent dots. The per-row op
      // sequence matches GruRegressor::backward; the recurrent dots run
      // kRB rows at a time through fused_dot_rows (bitwise four dot()
      // calls — exact lane decomposition) so each shared weight row
      // streams once per block instead of once per row. Every element
      // keeps its scalar single-accumulator chain: the candidate-dot
      // loop writes only dzr[h, 2h) while its dots read dzr[2h, 3h),
      // and it finishes all k before the z/r-dot loop reads dzr[0, 2h),
      // so blocking reorders nothing within any accumulator.
      std::size_t rp = s.row_begin;
      for (; rp + kRB <= r_end; rp += kRB) {
        const double* zg[kRB];
        const double* hp[kRB];
        double* dhr[kRB];
        double* dzr[kRB];
        block_rows_const(gates, rp, zg);
        block_rows_const(h_prev, rp, hp);
        block_rows(dh, rp, dhr);
        block_rows(dz, rp, dzr);
        for (std::size_t b = 0; b < kRB; ++b) {
          for (std::size_t j = 0; j < h; ++j) {
            const double z_g = zg[b][j];
            const double cand = zg[b][2 * h + j];
            const double dht = dhr[b][j];

            const double dzg = dht * (cand - hp[b][j]);
            const double dcand = dht * z_g;
            dhr[b][j] = dht * (1.0 - z_g);

            const double dcand_pre = dcand * (1.0 - cand * cand);
            dzr[b][2 * h + j] = dcand_pre;
            dzr[b][j] = dzg * z_g * (1.0 - z_g);
            dzr[b][h + j] = 0.0;
          }
        }
        const double* dz2[kRB];
        const double* dzc[kRB];
        for (std::size_t b = 0; b < kRB; ++b) {
          dz2[b] = dzr[b] + 2 * h;
          dzc[b] = dzr[b];
        }
        double dots[kRB];
        for (std::size_t k = 0; k < h; ++k) {
          kernels::fused_dot_rows(dz2, pwh + k * 3 * h + 2 * h, h, dots);
          for (std::size_t b = 0; b < kRB; ++b) {
            const double rk = zg[b][h + k];
            dzr[b][h + k] = dots[b] * hp[b][k] * rk * (1.0 - rk);
            dhr[b][k] += dots[b] * rk;
          }
        }
        for (std::size_t k = 0; k < h; ++k) {
          kernels::fused_dot_rows(dzc, pwh + k * 3 * h, 2 * h, dots);
          for (std::size_t b = 0; b < kRB; ++b) dhr[b][k] += dots[b];
        }
      }
      for (; rp < r_end; ++rp) {
        const double* zg = gates.row(rp).data();
        const double* hp = h_prev.row(rp).data();
        double* dhr = dh.row(rp).data();
        double* dzr = dz.row(rp).data();
        for (std::size_t j = 0; j < h; ++j) {
          const double z_g = zg[j];
          const double cand = zg[2 * h + j];
          const double dht = dhr[j];

          const double dzg = dht * (cand - hp[j]);
          const double dcand = dht * z_g;
          dhr[j] = dht * (1.0 - z_g);

          const double dcand_pre = dcand * (1.0 - cand * cand);
          dzr[2 * h + j] = dcand_pre;
          dzr[j] = dzg * z_g * (1.0 - z_g);
          dzr[h + j] = 0.0;
        }
        for (std::size_t k = 0; k < h; ++k) {
          const double sck =
              kernels::dot(dzr + 2 * h, pwh + k * 3 * h + 2 * h, h);
          const double rk = zg[h + k];
          dzr[h + k] = sck * hp[k] * rk * (1.0 - rk);
          dhr[k] += sck * rk;
        }
        for (std::size_t k = 0; k < h; ++k) {
          dhr[k] += kernels::dot(dzr, pwh + k * 3 * h, 2 * h);
        }
      }
      // Phase 2 — parameter gradients, blocked.
      std::size_t r = s.row_begin;
      for (; r + kRB <= r_end; r += kRB) {
        const double* dzr[kRB];
        const double* xr[kRB];
        const double* hp[kRB];
        block_rows_const(dz, r, dzr);
        block_rows_const(*xs[t], src_row0 + r, xr);
        block_rows_const(h_prev, r, hp);
        kernels::fused_bias_acc_rows(dzr, 3 * h, g + ofs.b);
        kernels::fused_outer_acc_rows(xr, f, dzr, 3 * h, g + ofs.wx, 3 * h);
        kernels::fused_outer_acc_rows(hp, h, dzr, 2 * h, g + ofs.wh, 3 * h);
        // (r ⊙ h) coefficients feed the candidate column block.
        const double* dz2[kRB];
        const double* cf_const[kRB];
        for (std::size_t b = 0; b < kRB; ++b) {
          double* cf = coeff.row(coeff_base + b).data();
          const double* zg = gates.row(r + b).data();
          for (std::size_t k = 0; k < h; ++k) cf[k] = zg[h + k] * hp[b][k];
          dz2[b] = dzr[b] + 2 * h;
          cf_const[b] = cf;
        }
        kernels::fused_outer_acc_rows(cf_const, h, dz2, h,
                                      g + ofs.wh + 2 * h, 3 * h);
      }
      for (; r < r_end; ++r) {
        const double* dzr = dz.row(r).data();
        const double* xr = xs[t]->row(src_row0 + r).data();
        const double* hp = h_prev.row(r).data();
        for (std::size_t j = 0; j < 3 * h; ++j) g[ofs.b + j] += dzr[j];
        kernels::outer_acc(xr, f, dzr, 3 * h, g + ofs.wx);
        for (std::size_t k = 0; k < h; ++k) {
          double* gp = g + ofs.wh + k * 3 * h;
          kernels::axpy(hp[k], dzr, gp, 2 * h);
          const double rh = gates(r, h + k) * hp[k];
          kernels::axpy(rh, dzr + 2 * h, gp + 2 * h, h);
        }
      }
    }

    std::span<double> gspan(g, ofs.total);
    if (clip_norm > 0.0) {
      const double sq = kernels::dot(gspan.data(), gspan.data(), gspan.size());
      const double norm = std::sqrt(sq);
      if (norm > clip_norm) {
        const double scale = clip_norm / norm;
        for (double& gv : gspan) gv *= scale;
      }
    }
    opts[i]->step(nets[i]->parameters(), gspan);
    kernels::note_train_batch();
  };
  util::ThreadPool::global().parallel_for(0, members, member_task);
  note_fused_batch(members, rows);
}

// ------------------------------------------------------------- FusedMlp --

const Matrix& FusedMlp::forward(std::span<Mlp* const> nets,
                                std::span<const FusedSlice> slices,
                                const Matrix& x, std::size_t src_row0) {
  assert(!nets.empty() && nets.size() == slices.size());
  const Mlp& n0 = *nets[0];
  std::size_t rows = 0;
  for (const FusedSlice& s : slices) rows += s.rows;
  check_slices(slices, rows);
  if (src_row0 + rows > x.rows()) {
    throw std::invalid_argument("FusedMlp: batch rows exceed input rows");
  }
  for (const Mlp* n : nets) {
    if (!n->same_architecture(n0)) {
      throw std::invalid_argument("FusedMlp: member architecture mismatch");
    }
  }
  const auto& dims = n0.dims();
  const std::size_t layers = n0.num_layers();
  ws_.reset();
  acts_.assign(layers + 1, nullptr);
  input_ = &x;
  input_row0_ = src_row0;
  for (std::size_t l = 0; l < layers; ++l) {
    acts_[l + 1] = &ws_.take(rows, dims[l + 1]);
  }
  // Member-major: each member drives its own slice rows through the
  // whole layer stack (its activations depend on its own rows only), so
  // the members fan out across the pool without changing any member's
  // arithmetic. The per-slice activation application is bitwise the
  // slab-wide one (element-independent).
  util::ThreadPool::global().parallel_for(0, nets.size(), [&](std::size_t i) {
    const FusedSlice& s = slices[i];
    const Matrix* cur = &x;
    for (std::size_t l = 0; l < layers; ++l) {
      Matrix& slab = *acts_[l + 1];
      dense_forward_slice(nets[i]->layer_parameters(l), dims[l], dims[l + 1],
                          *cur, l == 0 ? src_row0 : 0, slab, s);
      const Activation act =
          l + 1 == layers ? n0.output_activation() : n0.hidden_activation();
      activate_rows(act, slab, s.row_begin, s.rows);
      cur = &slab;
    }
  });
  return *acts_[layers];
}

void FusedMlp::backward(std::span<Mlp* const> nets,
                        std::span<const FusedSlice> slices, Matrix& grad_out) {
  assert(input_ != nullptr && "backward() requires a preceding forward()");
  const Mlp& n0 = *nets[0];
  const auto& dims = n0.dims();
  const std::size_t layers = n0.num_layers();
  // Delta slabs for layers layers-1 .. 1, taken up front so the member
  // tasks never touch the workspace.
  grad_slabs_.assign(layers, nullptr);
  for (std::size_t l = layers; l-- > 1;) {
    grad_slabs_[l] = &ws_.take(grad_out.rows(), dims[l]);
  }
  // Member-major, same scheme as forward(): each member back-propagates
  // its own slice rows into its own Mlp::gradients() buffer.
  util::ThreadPool::global().parallel_for(0, nets.size(), [&](std::size_t i) {
    const FusedSlice& s = slices[i];
    Matrix* g = &grad_out;
    for (std::size_t l = layers; l-- > 0;) {
      const Activation act =
          l + 1 == layers ? n0.output_activation() : n0.hidden_activation();
      scale_by_activation_grad_rows(act, *acts_[l + 1], *g, s.row_begin,
                                    s.rows);
      Matrix* gx = l > 0 ? grad_slabs_[l] : nullptr;
      const Matrix& in = l == 0 ? *input_ : *acts_[l];
      auto grad_slice = nets[i]->gradients().subspan(
          nets[i]->layer_offset(l), nets[i]->layer_param_count(l));
      dense_backward_slice(nets[i]->layer_parameters(l), dims[l], dims[l + 1],
                           in, l == 0 ? input_row0_ : 0, *g, grad_slice, gx,
                           s);
      g = gx;
    }
  });
}

void FusedMlp::train_batch(std::span<Mlp* const> nets,
                           std::span<const FusedSlice> slices, const Matrix& x,
                           const Matrix& y, LossKind loss,
                           std::span<Optimizer* const> opts,
                           std::span<double> losses, std::size_t src_row0) {
  assert(opts.size() == nets.size() && losses.size() == nets.size());
  const Matrix& pred = forward(nets, slices, x, src_row0);
  Matrix& grad = ws_.take(pred.rows(), pred.cols());
  // Loss rows and gradient buffers are member-disjoint, so these loops
  // fan out like forward()/backward() without changing any result.
  util::ThreadPool::global().parallel_for(0, nets.size(), [&](std::size_t i) {
    losses[i] = loss_value_rows(loss, pred, slices[i].row_begin, y,
                                src_row0 + slices[i].row_begin,
                                slices[i].rows);
    loss_grad_rows(loss, pred, slices[i].row_begin, y,
                   src_row0 + slices[i].row_begin, slices[i].rows, grad);
    nets[i]->zero_grad();
  });
  backward(nets, slices, grad);
  util::ThreadPool::global().parallel_for(0, nets.size(), [&](std::size_t i) {
    opts[i]->step(nets[i]->parameters(), nets[i]->gradients());
    kernels::note_train_batch();
  });
  note_fused_batch(nets.size(), pred.rows());
}

}  // namespace pfdrl::nn
