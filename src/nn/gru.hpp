// Single-layer GRU regressor with a dense head — the lighter recurrent
// alternative to the LSTM (extension beyond the paper; compared in
// bench/ablation_design). Same flat-parameter contract as the LSTM so it
// can participate in federated averaging:
//   [ Wx (F x 3H) | Wh (H x 3H) | b (3H) | W_head (H x O) | b_head (O) ]
// Gate order inside the 3H dimension: update (z), reset (r), candidate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {

class Workspace;

class GruRegressor {
 public:
  GruRegressor(std::size_t feature_dim, std::size_t hidden_dim,
               std::size_t output_dim, util::Rng& rng);

  [[nodiscard]] std::size_t feature_dim() const noexcept { return f_; }
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return h_; }
  [[nodiscard]] std::size_t output_dim() const noexcept { return o_; }
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return params_.size();
  }
  [[nodiscard]] std::span<double> parameters() noexcept { return params_; }
  [[nodiscard]] std::span<const double> parameters() const noexcept {
    return params_;
  }
  void set_parameters(std::span<const double> values);

  /// Forward over a sequence (xs[t]: batch x F); caches for backward.
  /// The step inputs are held by reference: `xs` must outlive the
  /// matching backward().
  const Matrix& forward(const std::vector<Matrix>& xs);
  /// Stateless inference (allocates a scratch workspace per call).
  [[nodiscard]] Matrix predict(const std::vector<Matrix>& xs) const;
  /// Allocation-free inference via workspace step scratch; the returned
  /// reference points into `ws`.
  const Matrix& predict(const std::vector<Matrix>& xs, Workspace& ws) const;

  /// Forward + loss + BPTT + optimizer step; returns batch loss.
  double train_batch(const std::vector<Matrix>& xs, const Matrix& y,
                     LossKind loss, Optimizer& opt, double clip_norm = 5.0);

 private:
  struct StepCache {
    const Matrix* x = nullptr;       // B x F step input (view into xs)
    Matrix gates;                    // B x 3H post-nonlinearity (z, r, cand)
    const Matrix* h_prev = nullptr;  // B x H hidden entering the step
    Matrix h;                        // B x H hidden after the step
  };

  /// One recurrent step into caller-provided scratch (outputs reshaped in
  /// place, fully overwritten). Shared by forward() and the workspace
  /// predict.
  void step_compute(const Matrix& x, const Matrix& h_prev, Matrix& gates,
                    Matrix& h) const;
  /// Dense head: out = h_last * W_head + b_head (out reshaped in place).
  void head_into(const Matrix& h_last, Matrix& out) const;
  void backward(const Matrix& grad_out, std::span<double> grads);

  std::size_t f_, h_, o_;
  std::vector<double> params_;
  // steps_ is resized (not cleared) per forward so step scratch keeps its
  // buffers; h0_ is the zeroed initial hidden the first step points at.
  std::vector<StepCache> steps_;
  Matrix h0_;
  Matrix output_;
  // Persistent training scratch (see LstmRegressor): reused in place each
  // train_batch so steady-state batches allocate nothing.
  std::vector<double> grads_scratch_;
  Matrix grad_out_scratch_;
  Matrix dh_, dz_;
};

}  // namespace pfdrl::nn
