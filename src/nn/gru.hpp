// Single-layer GRU regressor with a dense head — the lighter recurrent
// alternative to the LSTM (extension beyond the paper; compared in
// bench/ablation_design). Same flat-parameter contract as the LSTM so it
// can participate in federated averaging:
//   [ Wx (F x 3H) | Wh (H x 3H) | b (3H) | W_head (H x O) | b_head (O) ]
// Gate order inside the 3H dimension: update (z), reset (r), candidate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {

class GruRegressor {
 public:
  GruRegressor(std::size_t feature_dim, std::size_t hidden_dim,
               std::size_t output_dim, util::Rng& rng);

  [[nodiscard]] std::size_t feature_dim() const noexcept { return f_; }
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return h_; }
  [[nodiscard]] std::size_t output_dim() const noexcept { return o_; }
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return params_.size();
  }
  [[nodiscard]] std::span<double> parameters() noexcept { return params_; }
  [[nodiscard]] std::span<const double> parameters() const noexcept {
    return params_;
  }
  void set_parameters(std::span<const double> values);

  /// Forward over a sequence (xs[t]: batch x F); caches for backward.
  const Matrix& forward(const std::vector<Matrix>& xs);
  [[nodiscard]] Matrix predict(const std::vector<Matrix>& xs) const;

  /// Forward + loss + BPTT + optimizer step; returns batch loss.
  double train_batch(const std::vector<Matrix>& xs, const Matrix& y,
                     LossKind loss, Optimizer& opt, double clip_norm = 5.0);

 private:
  struct StepCache {
    Matrix x;      // B x F
    Matrix gates;  // B x 3H post-nonlinearity (z, r, candidate)
    Matrix h_prev; // B x H hidden entering the step
    Matrix h;      // B x H hidden after the step
  };

  void step_forward(const Matrix& x, const Matrix& h_prev,
                    StepCache& cache) const;
  void backward(const Matrix& grad_out, std::span<double> grads) const;

  std::size_t f_, h_, o_;
  std::vector<double> params_;
  std::vector<StepCache> steps_;
  Matrix output_;
};

}  // namespace pfdrl::nn
