// Activation functions and their derivatives. Derivatives are expressed
// in terms of the *activation output* where that is cheaper (sigmoid,
// tanh), which is what the layer caches during the forward pass.
#pragma once

#include "nn/matrix.hpp"

namespace pfdrl::nn {

enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

/// Scalar activation.
double activate(Activation a, double x) noexcept;
/// Derivative given the activation *output* y = activate(a, x).
double activate_grad_from_output(Activation a, double y) noexcept;

/// In-place matrix activation.
void activate_inplace(Activation a, Matrix& m);
/// grad_in(i) *= f'(y(i)) where y is the cached forward output.
void scale_by_activation_grad(Activation a, const Matrix& y, Matrix& grad);

/// Row-range variants for fused slabs (nn/fused.hpp): the same
/// element-independent math applied to rows [row_begin, row_begin+rows)
/// only, so per-member application over disjoint slices is bitwise the
/// slab-wide call.
void activate_rows(Activation a, Matrix& m, std::size_t row_begin,
                   std::size_t rows);
void scale_by_activation_grad_rows(Activation a, const Matrix& y, Matrix& grad,
                                   std::size_t row_begin, std::size_t rows);

const char* activation_name(Activation a) noexcept;

}  // namespace pfdrl::nn
