#include "nn/init.hpp"

#include <cmath>

namespace pfdrl::nn {

void init_weights(Matrix& w, InitScheme scheme, util::Rng& rng) {
  const auto fan_in = static_cast<double>(w.rows());
  const auto fan_out = static_cast<double>(w.cols());
  switch (scheme) {
    case InitScheme::kXavierUniform: {
      const double limit = std::sqrt(6.0 / (fan_in + fan_out));
      for (double& x : w.data()) x = rng.uniform(-limit, limit);
      break;
    }
    case InitScheme::kHeNormal: {
      const double stddev = std::sqrt(2.0 / std::max(fan_in, 1.0));
      for (double& x : w.data()) x = rng.normal(0.0, stddev);
      break;
    }
    case InitScheme::kZero:
      w.zero();
      break;
  }
}

}  // namespace pfdrl::nn
