#include "nn/dense.hpp"

#include <cassert>

#include "nn/kernels.hpp"

namespace pfdrl::nn {

void matvec1(std::span<const double> w, std::span<const double> b,
             std::span<const double> x, std::size_t in, std::size_t out,
             std::span<double> y) noexcept {
  assert(w.size() == in * out && b.size() == out);
  assert(x.size() == in && y.size() == out);
  const double* pw = w.data();
  std::size_t j = 0;
  for (; j + 4 <= out; j += 4) {
    double a0 = b[j], a1 = b[j + 1], a2 = b[j + 2], a3 = b[j + 3];
    const double* wj = pw + j;
    for (std::size_t k = 0; k < in; ++k) {
      const double xk = x[k];
      const double* wk = wj + k * out;
      a0 += xk * wk[0];
      a1 += xk * wk[1];
      a2 += xk * wk[2];
      a3 += xk * wk[3];
    }
    y[j] = a0;
    y[j + 1] = a1;
    y[j + 2] = a2;
    y[j + 3] = a3;
  }
  for (; j < out; ++j) {
    double acc = b[j];
    for (std::size_t k = 0; k < in; ++k) acc += x[k] * pw[k * out + j];
    y[j] = acc;
  }
}

void dense_forward(std::span<const double> params, std::size_t in,
                   std::size_t out, const Matrix& x, Activation act,
                   Matrix& y) {
  assert(params.size() == dense_param_count(in, out));
  assert(x.cols() == in);
  const std::size_t batch = x.rows();
  y.reshape(batch, out);

  const auto w = params.first(in * out);
  const auto b = params.subspan(in * out);
  if (batch == 1) {
    matvec1(w, b, x.row(0), in, out, y.row(0));
  } else {
    for (std::size_t r = 0; r < batch; ++r) {
      const double* xr = x.row(r).data();
      double* yr = y.row(r).data();
      for (std::size_t j = 0; j < out; ++j) yr[j] = b[j];
      for (std::size_t k = 0; k < in; ++k) {
        kernels::axpy(xr[k], w.data() + k * out, yr, out);
      }
    }
  }
  activate_inplace(act, y);
}

void dense_backward(std::span<const double> params, std::size_t in,
                    std::size_t out, const Matrix& x, const Matrix& y,
                    Activation act, Matrix& grad_y,
                    std::span<double> grad_params, Matrix* grad_x) {
  assert(params.size() == dense_param_count(in, out));
  assert(grad_params.size() == dense_param_count(in, out));
  assert(x.cols() == in && y.cols() == out);
  assert(grad_y.rows() == y.rows() && grad_y.cols() == out);
  const std::size_t batch = x.rows();

  // grad_y <- pre-activation delta.
  scale_by_activation_grad(act, y, grad_y);

  double* gw = grad_params.data();
  double* gb = grad_params.data() + in * out;
  for (std::size_t r = 0; r < batch; ++r) {
    const double* xr = x.row(r).data();
    const double* dr = grad_y.row(r).data();
    for (std::size_t j = 0; j < out; ++j) gb[j] += dr[j];
    kernels::outer_acc(xr, in, dr, out, gw);
  }

  if (grad_x != nullptr) {
    grad_x->reshape(batch, in);  // fully overwritten below
    const double* w = params.data();
    for (std::size_t r = 0; r < batch; ++r) {
      const double* dr = grad_y.row(r).data();
      double* gxr = grad_x->row(r).data();
      for (std::size_t k = 0; k < in; ++k) {
        gxr[k] = kernels::dot(dr, w + k * out, out);
      }
    }
  }
}

void dense_init(std::span<double> params, std::size_t in, std::size_t out,
                InitScheme scheme, util::Rng& rng) {
  assert(params.size() == dense_param_count(in, out));
  Matrix w(in, out);
  init_weights(w, scheme, rng);
  auto ws = w.data();
  for (std::size_t i = 0; i < ws.size(); ++i) params[i] = ws[i];
  for (std::size_t j = 0; j < out; ++j) params[in * out + j] = 0.0;
}

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       InitScheme scheme, util::Rng& rng)
    : in_(in),
      out_(out),
      act_(act),
      params_(dense_param_count(in, out), 0.0),
      grads_(dense_param_count(in, out), 0.0) {
  dense_init(params_, in, out, scheme, rng);
}

const Matrix& DenseLayer::forward(const Matrix& x) {
  input_ = x;
  dense_forward(params_, in_, out_, input_, act_, output_);
  return output_;
}

Matrix DenseLayer::backward(Matrix grad_y) {
  Matrix grad_x;
  dense_backward(params_, in_, out_, input_, output_, act_, grad_y, grads_,
                 &grad_x);
  return grad_x;
}

void DenseLayer::zero_grad() noexcept {
  for (double& g : grads_) g = 0.0;
}

}  // namespace pfdrl::nn
