// CSV interchange for device traces.
//
// Users with access to real device-level data (e.g. a Pecan Street
// Dataport export) can run every pipeline in this repository on it: the
// expected schema is one row per minute,
//     minute,watts[,mode]
// with `mode` one of off/standby/on (optional — when absent, modes are
// reconstructed with the ±10% band classifier from ems/mode.hpp using the
// spec passed in). Export writes the same schema, so synthetic traces
// can be round-tripped into plotting tools.
#pragma once

#include <string>

#include "data/trace.hpp"
#include "util/csv.hpp"

namespace pfdrl::data {

/// Serialize one device trace to CSV (minute, watts, mode).
util::CsvTable trace_to_csv(const DeviceTrace& trace);

/// Parse a device trace from CSV. Rows must be consecutive minutes
/// starting at 0; throws std::runtime_error on schema violations.
/// When the mode column is missing, modes are classified from watts
/// using the ±10% bands of `spec`.
DeviceTrace trace_from_csv(const util::CsvTable& table,
                           const DeviceSpec& spec);

/// File convenience wrappers.
void save_trace_csv(const DeviceTrace& trace, const std::string& path);
DeviceTrace load_trace_csv(const std::string& path, const DeviceSpec& spec);

}  // namespace pfdrl::data
