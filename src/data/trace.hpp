// Minute-resolution synthetic load trace generation.
//
// Each device runs a small semi-Markov process: user-driven devices wait
// in standby/off for the next usage session (hazard shaped by the
// household-adjusted hourly curve), run for a random session length, and
// afterwards either fall back to standby (the waste PFDRL reclaims) or
// are switched off by the user. Duty-cycling devices (fridge, HVAC,
// water heater) alternate on/standby autonomously, with the on-fraction
// modulated by the hourly curve and by season (month).
#pragma once

#include <cstdint>
#include <vector>

#include "data/device.hpp"
#include "data/household.hpp"
#include "util/rng.hpp"

namespace pfdrl::data {

constexpr std::size_t kMinutesPerDay = 24 * 60;
constexpr std::size_t kMinutesPerHour = 60;

/// Hour of day (0..23) for a minute index counted from trace start, with
/// the trace assumed to start at midnight.
constexpr std::size_t hour_of_day(std::size_t minute) noexcept {
  return (minute / kMinutesPerHour) % 24;
}
constexpr std::size_t day_index(std::size_t minute) noexcept {
  return minute / kMinutesPerDay;
}

/// One device's generated series.
struct DeviceTrace {
  DeviceSpec spec;
  std::vector<double> watts;      // observed power (with noise)
  std::vector<DeviceMode> modes;  // ground-truth operating mode

  [[nodiscard]] std::size_t minutes() const noexcept { return watts.size(); }

  /// Total energy in kWh over [begin, end) minutes.
  [[nodiscard]] double energy_kwh(std::size_t begin, std::size_t end) const;
  /// Energy spent in standby mode over [begin, end), kWh — the quantity
  /// the paper's EMS tries to reclaim.
  [[nodiscard]] double standby_energy_kwh(std::size_t begin,
                                          std::size_t end) const;
};

struct HouseholdTrace {
  std::uint32_t household_id = 0;
  std::vector<DeviceTrace> devices;

  [[nodiscard]] std::size_t minutes() const noexcept {
    return devices.empty() ? 0 : devices.front().minutes();
  }
  [[nodiscard]] double total_energy_kwh() const;
  [[nodiscard]] double total_standby_energy_kwh() const;
};

struct TraceConfig {
  std::size_t days = 7;
  /// Month of year (0..11) for seasonal modulation (HVAC load, Fig. 10).
  std::uint32_t month = 6;
  std::uint64_t seed = 1;
};

/// Generate one device's trace.
DeviceTrace generate_device_trace(const HouseholdDevice& device,
                                  const TraceConfig& cfg, util::Rng rng);

/// Generate all devices of one household (device streams are forked from
/// the config seed and the device index, so traces are stable even if
/// generation is parallelised).
HouseholdTrace generate_household_trace(const HouseholdProfile& profile,
                                        const TraceConfig& cfg);

/// Seasonal HVAC/water-heater intensity for a month (Texas-like: summer
/// peak). Returns a multiplier around 1.
double seasonal_factor(std::uint32_t month) noexcept;

}  // namespace pfdrl::data
