#include "data/device.hpp"

namespace pfdrl::data {

const char* device_mode_name(DeviceMode m) noexcept {
  switch (m) {
    case DeviceMode::kOff: return "off";
    case DeviceMode::kStandby: return "standby";
    case DeviceMode::kOn: return "on";
  }
  return "?";
}

const char* device_type_name(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kTv: return "tv";
    case DeviceType::kHvac: return "hvac";
    case DeviceType::kLighting: return "lighting";
    case DeviceType::kFridge: return "fridge";
    case DeviceType::kWashingMachine: return "washing_machine";
    case DeviceType::kDishwasher: return "dishwasher";
    case DeviceType::kMicrowave: return "microwave";
    case DeviceType::kComputer: return "computer";
    case DeviceType::kWaterHeater: return "water_heater";
    case DeviceType::kGameConsole: return "game_console";
    case DeviceType::kCount: return "?";
  }
  return "?";
}

namespace {

std::vector<double> hours(std::initializer_list<double> w) { return w; }

std::vector<DeviceArchetype> build_catalog() {
  std::vector<DeviceArchetype> catalog;
  catalog.resize(kNumDeviceTypes);

  // Typical power figures (watts) follow published standby-power surveys
  // (LBNL standby tables, Raj et al. 2009 cited by the paper).
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kTv)];
    d.spec = {DeviceType::kTv, "tv", 6.0, 120.0, 0.10, 0.03};
    d.behavior = {2.5, 90.0, 10.0, 0.15, false, 0, 0};
    d.hourly_usage_weight =
        hours({0.2, 0.1, 0.05, 0.05, 0.05, 0.1, 0.4, 0.6, 0.5, 0.3, 0.3, 0.4,
               0.6, 0.5, 0.4, 0.4, 0.6, 1.0, 1.6, 2.0, 2.2, 1.8, 1.0, 0.5});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kHvac)];
    d.spec = {DeviceType::kHvac, "hvac", 10.0, 1800.0, 0.12, 0.04, true};
    d.behavior = {0.0, 0.0, 0.0, 0.0, true, 18.0, 42.0};
    d.hourly_usage_weight =
        hours({0.7, 0.6, 0.6, 0.6, 0.6, 0.7, 0.9, 1.0, 1.0, 1.0, 1.1, 1.3,
               1.5, 1.6, 1.7, 1.7, 1.5, 1.3, 1.2, 1.1, 1.0, 0.9, 0.8, 0.7});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kLighting)];
    d.spec = {DeviceType::kLighting, "lighting", 2.0, 60.0, 0.15, 0.05};
    d.behavior = {3.0, 120.0, 15.0, 0.5, false, 0, 0};
    d.hourly_usage_weight =
        hours({0.3, 0.1, 0.05, 0.05, 0.1, 0.4, 1.0, 1.2, 0.6, 0.3, 0.2, 0.2,
               0.2, 0.2, 0.2, 0.3, 0.6, 1.2, 1.8, 2.0, 1.9, 1.6, 1.0, 0.5});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kFridge)];
    d.spec = {DeviceType::kFridge, "fridge", 3.0, 150.0, 0.08, 0.03, true};
    d.behavior = {0.0, 0.0, 0.0, 0.0, true, 15.0, 30.0};
    d.hourly_usage_weight = std::vector<double>(24, 1.0);
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kWashingMachine)];
    d.spec = {DeviceType::kWashingMachine, "washing_machine", 4.0, 500.0,
              0.20, 0.04};
    d.behavior = {0.4, 50.0, 30.0, 0.6, false, 0, 0};
    d.hourly_usage_weight =
        hours({0.05, 0.02, 0.02, 0.02, 0.02, 0.05, 0.3, 0.7, 0.9, 1.0, 1.0,
               0.9, 0.8, 0.8, 0.7, 0.7, 0.8, 1.0, 1.1, 0.9, 0.6, 0.3, 0.15,
               0.08});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kDishwasher)];
    d.spec = {DeviceType::kDishwasher, "dishwasher", 3.5, 1200.0, 0.15, 0.04};
    d.behavior = {0.6, 75.0, 45.0, 0.5, false, 0, 0};
    d.hourly_usage_weight =
        hours({0.05, 0.02, 0.02, 0.02, 0.02, 0.05, 0.2, 0.6, 0.8, 0.5, 0.3,
               0.4, 0.8, 0.9, 0.4, 0.3, 0.3, 0.5, 1.0, 1.8, 1.6, 1.0, 0.4,
               0.1});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kMicrowave)];
    d.spec = {DeviceType::kMicrowave, "microwave", 3.0, 1100.0, 0.10, 0.03};
    d.behavior = {2.0, 4.0, 1.0, 0.05, false, 0, 0};
    d.hourly_usage_weight =
        hours({0.05, 0.02, 0.02, 0.02, 0.05, 0.2, 1.0, 1.6, 1.0, 0.4, 0.4,
               1.2, 1.8, 1.2, 0.4, 0.3, 0.5, 1.2, 1.8, 1.4, 0.8, 0.4, 0.2,
               0.1});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kComputer)];
    d.spec = {DeviceType::kComputer, "computer", 8.0, 180.0, 0.15, 0.04};
    d.behavior = {2.0, 150.0, 20.0, 0.1, false, 0, 0};
    d.hourly_usage_weight =
        hours({0.4, 0.2, 0.1, 0.05, 0.05, 0.1, 0.3, 0.6, 1.2, 1.6, 1.7, 1.6,
               1.4, 1.6, 1.7, 1.6, 1.4, 1.2, 1.2, 1.4, 1.4, 1.2, 0.9, 0.6});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kWaterHeater)];
    d.spec = {DeviceType::kWaterHeater, "water_heater", 6.0, 4000.0, 0.10,
              0.03, true};
    d.behavior = {0.0, 0.0, 0.0, 0.0, true, 10.0, 80.0};
    d.hourly_usage_weight =
        hours({0.5, 0.4, 0.4, 0.4, 0.5, 1.0, 1.8, 2.0, 1.4, 0.9, 0.7, 0.7,
               0.8, 0.7, 0.6, 0.6, 0.7, 1.0, 1.4, 1.6, 1.5, 1.2, 0.9, 0.6});
  }
  {
    auto& d = catalog[static_cast<std::size_t>(DeviceType::kGameConsole)];
    d.spec = {DeviceType::kGameConsole, "game_console", 12.0, 150.0, 0.12,
              0.05};
    d.behavior = {0.8, 80.0, 15.0, 0.1, false, 0, 0};
    d.hourly_usage_weight =
        hours({0.3, 0.15, 0.1, 0.05, 0.05, 0.05, 0.1, 0.2, 0.3, 0.3, 0.3,
               0.4, 0.5, 0.5, 0.6, 0.8, 1.2, 1.6, 1.8, 2.0, 2.0, 1.6, 1.0,
               0.5});
  }
  return catalog;
}

}  // namespace

const std::vector<DeviceArchetype>& device_catalog() {
  static const std::vector<DeviceArchetype> catalog = build_catalog();
  return catalog;
}

}  // namespace pfdrl::data
