#include "data/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace pfdrl::data {

double normalization_scale(const DeviceSpec& spec) noexcept {
  // Headroom above nominal on-power so noisy peaks stay near [0, 1].
  return std::max(1.0, spec.on_watts * 1.5);
}

double encode_watts(double watts, double scale, bool log_scale) noexcept {
  watts = std::max(0.0, watts);
  if (!log_scale) return watts / scale;
  return std::log1p(watts) / std::log1p(scale);
}

double decode_watts(double value, double scale, bool log_scale) noexcept {
  if (!log_scale) return std::max(0.0, value * scale);
  return std::max(0.0, std::expm1(value * std::log1p(scale)));
}

namespace {

struct CalendarFeature {
  double sin_h;
  double cos_h;
};

CalendarFeature calendar(std::size_t minute) noexcept {
  const double hour_frac =
      static_cast<double>(minute % kMinutesPerDay) /
      static_cast<double>(kMinutesPerDay);
  const double angle = 2.0 * std::numbers::pi * hour_frac;
  return {std::sin(angle), std::cos(angle)};
}

std::size_t count_samples(std::size_t begin, std::size_t end,
                          const WindowConfig& cfg, std::size_t stride) {
  // Target indices run over [first_feasible_target, end).
  const std::size_t first = first_feasible_target(cfg, begin);
  if (end <= first) return 0;
  return (end - first + stride - 1) / stride;
}

}  // namespace

SupervisedSet make_supervised(const DeviceTrace& trace,
                              const WindowConfig& cfg,
                              std::size_t begin_minute,
                              std::size_t end_minute) {
  assert(cfg.window >= 1);
  const std::size_t stride = std::max<std::size_t>(1, cfg.stride);
  end_minute = std::min(end_minute, trace.minutes());

  SupervisedSet set;
  set.scale = normalization_scale(trace.spec);
  const std::size_t n = count_samples(begin_minute, end_minute, cfg, stride);
  const std::size_t feat = cfg.window + (cfg.calendar_features ? 2 : 0);
  set.x = nn::Matrix(n, feat);
  set.y = nn::Matrix(n, 1);
  set.target_minute.reserve(n);

  // For target t the feature window is the `window` minutes ending
  // `horizon` minutes earlier: [t - horizon - window + 1, t - horizon].
  const std::size_t gap = cfg.horizon > 0 ? cfg.horizon : 1;
  std::size_t row = 0;
  for (std::size_t t = first_feasible_target(cfg, begin_minute);
       t < end_minute; t += stride) {
    double* xr = set.x.row(row).data();
    for (std::size_t k = 0; k < cfg.window; ++k) {
      xr[k] = encode_watts(trace.watts[t - gap - cfg.window + 1 + k],
                           set.scale, cfg.log_scale);
    }
    if (cfg.calendar_features) {
      const auto cal = calendar(t);
      xr[cfg.window] = cal.sin_h;
      xr[cfg.window + 1] = cal.cos_h;
    }
    set.y(row, 0) = encode_watts(trace.watts[t], set.scale, cfg.log_scale);
    set.target_minute.push_back(t);
    ++row;
  }
  assert(row == n);
  return set;
}

SequenceSet make_sequences(const DeviceTrace& trace, const WindowConfig& cfg,
                           std::size_t begin_minute, std::size_t end_minute) {
  assert(cfg.window >= 1);
  const std::size_t stride = std::max<std::size_t>(1, cfg.stride);
  end_minute = std::min(end_minute, trace.minutes());

  SequenceSet set;
  set.scale = normalization_scale(trace.spec);
  const std::size_t n = count_samples(begin_minute, end_minute, cfg, stride);
  const std::size_t step_feat = 1 + (cfg.calendar_features ? 2 : 0);
  set.xs.assign(cfg.window, nn::Matrix(n, step_feat));
  set.y = nn::Matrix(n, 1);
  set.target_minute.reserve(n);

  const std::size_t gap = cfg.horizon > 0 ? cfg.horizon : 1;
  std::size_t row = 0;
  for (std::size_t t = first_feasible_target(cfg, begin_minute);
       t < end_minute; t += stride) {
    for (std::size_t k = 0; k < cfg.window; ++k) {
      const std::size_t src = t - gap - cfg.window + 1 + k;
      double* xr = set.xs[k].row(row).data();
      xr[0] = encode_watts(trace.watts[src], set.scale, cfg.log_scale);
      if (cfg.calendar_features) {
        const auto cal = calendar(src);
        xr[1] = cal.sin_h;
        xr[2] = cal.cos_h;
      }
    }
    set.y(row, 0) = encode_watts(trace.watts[t], set.scale, cfg.log_scale);
    set.target_minute.push_back(t);
    ++row;
  }
  assert(row == n);
  return set;
}

SplitPoint train_test_split(std::size_t minutes, double train_fraction) {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  return {static_cast<std::size_t>(
      static_cast<double>(minutes) * train_fraction)};
}

double prediction_accuracy(double predicted_watts, double real_watts,
                           double floor_watts) noexcept {
  if (real_watts < floor_watts) {
    // Relative error undefined near zero; treat a near-zero prediction as
    // fully correct and anything substantial as fully wrong.
    return predicted_watts < floor_watts ? 1.0 : 0.0;
  }
  const double rel = std::abs(predicted_watts - real_watts) / real_watts;
  return std::clamp(1.0 - rel, 0.0, 1.0);
}

}  // namespace pfdrl::data
