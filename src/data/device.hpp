// Device models for the synthetic residential load generator.
//
// This module replaces the Pecan Street Dataport traces (proprietary,
// account-gated) with a statistical equivalent: per-device minute-level
// power series where the three operating modes the paper's EMS acts on
// (off / standby / on) are clearly present, standby is a roughly constant
// low draw, and on-power varies realistically. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pfdrl::data {

/// Ground-truth operating mode of a device at a given minute. The EMS
/// never sees this directly — it classifies modes from power draw
/// (ems/mode.hpp) — but the generator uses it, and tests check the
/// classifier against it.
enum class DeviceMode : std::uint8_t { kOff = 0, kStandby = 1, kOn = 2 };

const char* device_mode_name(DeviceMode m) noexcept;

/// Device categories mirroring the appliance types in the Pecan Street
/// dataset's disaggregated columns.
enum class DeviceType : std::uint8_t {
  kTv = 0,
  kHvac,
  kLighting,
  kFridge,
  kWashingMachine,
  kDishwasher,
  kMicrowave,
  kComputer,
  kWaterHeater,
  kGameConsole,
  kCount  // sentinel
};

constexpr std::size_t kNumDeviceTypes = static_cast<std::size_t>(DeviceType::kCount);

const char* device_type_name(DeviceType t) noexcept;

/// Static electrical characteristics of one concrete device instance.
/// Power values are watts.
struct DeviceSpec {
  DeviceType type = DeviceType::kTv;
  std::string label;        // e.g. "tv@home3"
  double standby_watts = 5.0;
  double on_watts = 100.0;
  /// Fraction of on-power fluctuation (multiplicative noise).
  double on_noise = 0.08;
  /// Fraction of standby-power fluctuation.
  double standby_noise = 0.03;
  /// Protected devices (fridge, HVAC, water heater) duty-cycle on their
  /// own: their low-power phase is part of normal operation, not standby
  /// waste, and an EMS must never switch them off. They are metered and
  /// forecast like everything else but excluded from EMS actuation —
  /// the standard "do-not-touch" list of residential EMS products.
  bool protected_device = false;
};

/// Behavioural parameters: how often and how long the device runs, and
/// what happens after use (the standby-waste behaviour PFDRL reclaims).
struct DeviceBehavior {
  /// Mean number of usage sessions per day.
  double sessions_per_day = 2.0;
  /// Mean/min session length in minutes.
  double mean_session_minutes = 60.0;
  double min_session_minutes = 5.0;
  /// Probability that the user powers the device fully off after a
  /// session (otherwise it lingers in standby until the next session).
  double off_after_use_prob = 0.2;
  /// Duty-cycling device (fridge/HVAC): alternates on/standby on its own
  /// regardless of user sessions.
  bool duty_cycling = false;
  double duty_on_minutes = 20.0;
  double duty_off_minutes = 40.0;
};

/// Catalog entry: typical spec + behaviour for a device type. Concrete
/// instances are sampled around these in household.cpp.
struct DeviceArchetype {
  DeviceSpec spec;
  DeviceBehavior behavior;
  /// Relative weight of usage probability per hour of day [24]; scaled by
  /// sessions_per_day. Household profiles shift/stretch this curve.
  std::vector<double> hourly_usage_weight;  // size 24
};

/// The built-in catalog, one archetype per DeviceType.
const std::vector<DeviceArchetype>& device_catalog();

}  // namespace pfdrl::data
