#include "data/tariff.hpp"

#include <algorithm>

namespace pfdrl::data {

double VariableTariff::cents_per_kwh(
    std::size_t minute_of_year) const noexcept {
  // Diurnal shape: overnight trough, late-afternoon peak (ERCOT-like).
  static constexpr double kHourly[24] = {
      0.35, 0.30, 0.28, 0.28, 0.30, 0.40, 0.60, 0.80, 0.85, 0.90, 0.95, 1.00,
      1.10, 1.25, 1.45, 1.60, 1.70, 1.60, 1.35, 1.15, 1.00, 0.80, 0.60, 0.45};
  // Monthly wholesale factor: summer scarcity pricing, soft shoulders.
  static constexpr double kMonthly[12] = {0.9, 0.85, 0.8, 0.7, 0.75, 0.95,
                                          1.35, 1.6, 1.4, 1.0, 0.85, 0.9};
  const std::size_t minute_of_day = minute_of_year % (24 * 60);
  const std::size_t hour = minute_of_day / 60;
  const std::uint32_t month = month_of_minute(minute_of_year);
  // Base level chosen so the yearly average sits near the fixed plan.
  const double cents = 11.0 * kHourly[hour] * kMonthly[month];
  return std::clamp(cents, kMinCents, kMaxCents);
}

}  // namespace pfdrl::data
