#include "data/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace pfdrl::data {

namespace {

/// The same ±10% band rule as ems::classify_mode, restated here so the
/// data layer stays independent of the ems layer (which depends on it).
DeviceMode classify_for_import(double watts, const DeviceSpec& spec) {
  constexpr double kOffFloor = 0.5;
  constexpr double kBand = 0.10;
  if (watts < kOffFloor) return DeviceMode::kOff;
  if (watts >= (1.0 - kBand) * spec.standby_watts &&
      watts <= (1.0 + kBand) * spec.standby_watts) {
    return DeviceMode::kStandby;
  }
  if (watts >= (1.0 - kBand) * spec.on_watts &&
      watts <= (1.0 + kBand) * spec.on_watts) {
    return DeviceMode::kOn;
  }
  const double d_s =
      std::abs(std::log(std::max(watts, 1e-3) / spec.standby_watts));
  const double d_on = std::abs(std::log(std::max(watts, 1e-3) / spec.on_watts));
  return d_s <= d_on ? DeviceMode::kStandby : DeviceMode::kOn;
}

DeviceMode parse_mode(const std::string& s) {
  if (s == "off") return DeviceMode::kOff;
  if (s == "standby") return DeviceMode::kStandby;
  if (s == "on") return DeviceMode::kOn;
  throw std::runtime_error("trace csv: unknown mode '" + s + "'");
}

}  // namespace

util::CsvTable trace_to_csv(const DeviceTrace& trace) {
  util::CsvTable table({"minute", "watts", "mode"});
  for (std::size_t m = 0; m < trace.minutes(); ++m) {
    char watts[32];
    std::snprintf(watts, sizeof(watts), "%.4f", trace.watts[m]);
    table.add_row({std::to_string(m), watts,
                   device_mode_name(trace.modes[m])});
  }
  return table;
}

DeviceTrace trace_from_csv(const util::CsvTable& table,
                           const DeviceSpec& spec) {
  const auto minute_col = table.column("minute");
  const auto watts_col = table.column("watts");
  if (!minute_col || !watts_col) {
    throw std::runtime_error("trace csv: need 'minute' and 'watts' columns");
  }
  const auto mode_col = table.column("mode");

  DeviceTrace trace;
  trace.spec = spec;
  trace.watts.reserve(table.num_rows());
  trace.modes.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const auto minute = table.cell_as_double(r, *minute_col);
    if (!minute || static_cast<std::size_t>(*minute) != r) {
      throw std::runtime_error(
          "trace csv: minutes must be consecutive starting at 0 (row " +
          std::to_string(r) + ")");
    }
    const auto watts = table.cell_as_double(r, *watts_col);
    if (!watts || *watts < 0.0) {
      throw std::runtime_error("trace csv: bad watts at row " +
                               std::to_string(r));
    }
    trace.watts.push_back(*watts);
    if (mode_col) {
      trace.modes.push_back(parse_mode(table.cell(r, *mode_col)));
    } else {
      trace.modes.push_back(classify_for_import(*watts, spec));
    }
  }
  return trace;
}

void save_trace_csv(const DeviceTrace& trace, const std::string& path) {
  trace_to_csv(trace).save(path);
}

DeviceTrace load_trace_csv(const std::string& path, const DeviceSpec& spec) {
  return trace_from_csv(util::CsvTable::load(path), spec);
}

}  // namespace pfdrl::data
