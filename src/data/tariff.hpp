// Electricity tariffs for the monetary-cost metric (paper §4, Fig. 10):
// a Texas-style fixed-rate plan (11.67 ¢/kWh average) and a variable
// (time-of-use) plan quoted in the paper's 0.08–20 ¢/kWh range, with the
// seasonal structure that makes the two plans trade places across months.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace pfdrl::data {

class Tariff {
 public:
  virtual ~Tariff() = default;
  /// Price in cents per kWh at the given minute of the year (months are
  /// modeled as 30 days for simplicity).
  [[nodiscard]] virtual double cents_per_kwh(std::size_t minute_of_year)
      const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Flat rate: the paper quotes 11.67 cents/kWh average for TX.
class FixedTariff final : public Tariff {
 public:
  explicit FixedTariff(double cents = 11.67) noexcept : cents_(cents) {}
  [[nodiscard]] double cents_per_kwh(std::size_t) const noexcept override {
    return cents_;
  }
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  double cents_;
};

/// Time-of-use rate: diurnal curve (cheap overnight, expensive late
/// afternoon) scaled by a monthly wholesale factor (expensive summer,
/// cheap spring/fall), clamped to the paper's quoted [0.08, 20] band.
class VariableTariff final : public Tariff {
 public:
  VariableTariff() noexcept = default;
  [[nodiscard]] double cents_per_kwh(
      std::size_t minute_of_year) const noexcept override;
  [[nodiscard]] std::string name() const override { return "variable"; }

  static constexpr double kMinCents = 0.08;
  static constexpr double kMaxCents = 20.0;
};

/// Minutes per modeled month (30 days).
constexpr std::size_t kMinutesPerMonth = 30 * 24 * 60;

/// Month (0..11) for a minute of the year under the 30-day-month model.
constexpr std::uint32_t month_of_minute(std::size_t minute_of_year) noexcept {
  return static_cast<std::uint32_t>((minute_of_year / kMinutesPerMonth) % 12);
}

}  // namespace pfdrl::data
