#include "data/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pfdrl::data {

double DeviceTrace::energy_kwh(std::size_t begin, std::size_t end) const {
  end = std::min(end, watts.size());
  double wh = 0.0;
  for (std::size_t m = begin; m < end; ++m) wh += watts[m] / 60.0;
  return wh / 1000.0;
}

double DeviceTrace::standby_energy_kwh(std::size_t begin,
                                       std::size_t end) const {
  end = std::min(end, watts.size());
  double wh = 0.0;
  for (std::size_t m = begin; m < end; ++m) {
    if (modes[m] == DeviceMode::kStandby) wh += watts[m] / 60.0;
  }
  return wh / 1000.0;
}

double HouseholdTrace::total_energy_kwh() const {
  double total = 0.0;
  for (const auto& d : devices) total += d.energy_kwh(0, d.minutes());
  return total;
}

double HouseholdTrace::total_standby_energy_kwh() const {
  double total = 0.0;
  for (const auto& d : devices) {
    total += d.standby_energy_kwh(0, d.minutes());
  }
  return total;
}

double seasonal_factor(std::uint32_t month) noexcept {
  // Texas cooling season: July/August peak, mild winters.
  static constexpr double kByMonth[12] = {0.8, 0.8, 0.85, 0.95, 1.1, 1.3,
                                          1.45, 1.5, 1.3, 1.05, 0.9, 0.85};
  return kByMonth[month % 12];
}

namespace {

/// Per-minute probability that a session starts in hour `h`, such that
/// the expected number of sessions per day matches behavior.sessions_per_day
/// given the hourly weights.
double session_start_prob(const HouseholdDevice& dev, std::size_t hour) {
  const auto& w = dev.hourly_usage_weight;
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  if (total <= 0.0) return 0.0;
  // sessions/day = sum_h p(h) * 60  =>  p(h) = rate * w[h] with
  // rate = sessions_per_day / (60 * total).
  return dev.behavior.sessions_per_day * w[hour] / (60.0 * total);
}

double session_length_minutes(const HouseholdDevice& dev, util::Rng& rng) {
  // Exponential around the mean, floored at the minimum: short sessions
  // dominate but long tails exist (mirrors appliance usage studies).
  const double u = std::max(1e-12, rng.uniform());
  const double len = -dev.behavior.mean_session_minutes * std::log(u);
  return std::max(dev.behavior.min_session_minutes, len);
}

}  // namespace

DeviceTrace generate_device_trace(const HouseholdDevice& device,
                                  const TraceConfig& cfg, util::Rng rng) {
  const std::size_t total_minutes = cfg.days * kMinutesPerDay;
  DeviceTrace trace;
  trace.spec = device.spec;
  trace.watts.resize(total_minutes, 0.0);
  trace.modes.resize(total_minutes, DeviceMode::kStandby);

  const bool thermal = device.spec.type == DeviceType::kHvac ||
                       device.spec.type == DeviceType::kWaterHeater;
  const double season = thermal ? seasonal_factor(cfg.month) : 1.0;

  if (device.behavior.duty_cycling) {
    // Autonomous on/standby alternation. The on-fraction scales with the
    // hourly weight and the seasonal factor by stretching on-periods.
    DeviceMode mode = DeviceMode::kStandby;
    double remaining = rng.uniform(1.0, device.behavior.duty_off_minutes);
    for (std::size_t m = 0; m < total_minutes; ++m) {
      if (remaining <= 0.0) {
        const std::size_t h = hour_of_day(m);
        const double intensity = device.hourly_usage_weight[h] * season;
        if (mode == DeviceMode::kOn) {
          mode = DeviceMode::kStandby;
          remaining = std::max(
              2.0, device.behavior.duty_off_minutes / std::max(0.2, intensity) *
                       rng.uniform(0.7, 1.3));
        } else {
          mode = DeviceMode::kOn;
          remaining = std::max(2.0, device.behavior.duty_on_minutes *
                                        intensity * rng.uniform(0.7, 1.3));
        }
      }
      remaining -= 1.0;
      trace.modes[m] = mode;
    }
  } else {
    // User-session process.
    DeviceMode mode = rng.bernoulli(0.5) ? DeviceMode::kStandby
                                         : DeviceMode::kOff;
    double session_remaining = 0.0;
    for (std::size_t m = 0; m < total_minutes; ++m) {
      const std::size_t h = hour_of_day(m);
      const bool night = h >= 22 || h < 6;
      if (mode == DeviceMode::kOn) {
        session_remaining -= 1.0;
        if (session_remaining <= 0.0) {
          // People are far more likely to power a device fully off when
          // the session ends late at night (heading to bed) than during
          // the day — this is what makes overnight standby waste small
          // and midday-to-midnight waste large (paper Fig. 11).
          const double p_off = std::min(
              0.9, device.behavior.off_after_use_prob + (night ? 0.35 : 0.0));
          mode = rng.bernoulli(p_off) ? DeviceMode::kOff
                                      : DeviceMode::kStandby;
        }
      } else {
        if (mode == DeviceMode::kStandby && night &&
            rng.bernoulli(1.0 / 240.0)) {
          // Bedtime sweep: lingering standby devices get switched off at
          // some point during the night.
          mode = DeviceMode::kOff;
        }
        if (rng.bernoulli(session_start_prob(device, h))) {
          mode = DeviceMode::kOn;
          session_remaining = session_length_minutes(device, rng);
        }
      }
      trace.modes[m] = mode;
    }
  }

  // Power draw per mode, with multiplicative noise. On-power for thermal
  // devices additionally scales with season (compressor load).
  for (std::size_t m = 0; m < total_minutes; ++m) {
    switch (trace.modes[m]) {
      case DeviceMode::kOff:
        trace.watts[m] = 0.0;
        break;
      case DeviceMode::kStandby:
        trace.watts[m] = std::max(
            0.1, device.spec.standby_watts *
                     (1.0 + device.spec.standby_noise * rng.normal()));
        break;
      case DeviceMode::kOn: {
        const double base = device.spec.on_watts * (thermal ? season : 1.0);
        trace.watts[m] = std::max(
            device.spec.standby_watts * 2.0,
            base * (1.0 + device.spec.on_noise * rng.normal()));
        break;
      }
    }
  }
  return trace;
}

HouseholdTrace generate_household_trace(const HouseholdProfile& profile,
                                        const TraceConfig& cfg) {
  HouseholdTrace trace;
  trace.household_id = profile.id;
  trace.devices.reserve(profile.devices.size());
  util::Rng root(cfg.seed ^ (0x9E3779B97F4A7C15ULL * (profile.id + 1)));
  for (std::size_t d = 0; d < profile.devices.size(); ++d) {
    trace.devices.push_back(
        generate_device_trace(profile.devices[d], cfg, root.fork(d)));
  }
  return trace;
}

}  // namespace pfdrl::data
