// Supervised dataset construction for load forecasting: sliding-window
// features over a device trace, with optional calendar features, 80/20
// train/test split (the paper's setting), and per-device normalization.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "data/trace.hpp"
#include "nn/matrix.hpp"

namespace pfdrl::data {

struct WindowConfig {
  /// Number of past minutes fed as features.
  std::size_t window = 16;
  /// Append sin/cos of hour-of-day (helps all models; essential for the
  /// schedule-dependent patterns).
  bool calendar_features = true;
  /// Keep every `stride`-th window (training-time subsampling; 1 = all).
  std::size_t stride = 1;
  /// Prediction horizon in minutes: the features end `horizon` minutes
  /// before the target (paper §3.2.1: each DFL prediction covers the
  /// *next hour*, so forecasts are genuinely multi-step — persistence
  /// alone cannot win).
  std::size_t horizon = 15;
  /// Encode watts as log1p(w)/log1p(scale) instead of w/scale. Device
  /// loads span ~3 orders of magnitude between standby and on; training
  /// on the compressed scale weights the low-power regimes the paper's
  /// *relative* accuracy metric cares about, instead of letting the
  /// on-mode absolute errors dominate the loss.
  bool log_scale = true;
};

/// Per-device normalization: watts are divided by `scale` before entering
/// a model, predictions multiplied back. Using a spec-derived scale (not
/// data max) keeps the transform identical across federated clients.
double normalization_scale(const DeviceSpec& spec) noexcept;

/// Encode a power reading into model units under the given scale.
double encode_watts(double watts, double scale, bool log_scale) noexcept;
/// Inverse of encode_watts (clamped at 0).
double decode_watts(double value, double scale, bool log_scale) noexcept;

/// Minutes of history a prediction needs before its target: the window
/// plus the gap to the horizon. The first feasible target minute of a
/// range starting at `begin` is max(begin, history_needed(cfg)).
constexpr std::size_t history_needed(const WindowConfig& cfg) noexcept {
  return cfg.window + (cfg.horizon > 0 ? cfg.horizon - 1 : 0);
}
constexpr std::size_t first_feasible_target(const WindowConfig& cfg,
                                            std::size_t begin) noexcept {
  return std::max(begin, history_needed(cfg));
}

/// Flat supervised set for the MLP/LR/SVR-style forecasters.
/// X row = [w_{t-W+1..t} scaled | sin h | cos h], y = scaled w_{t+1}.
struct SupervisedSet {
  nn::Matrix x;  // samples x features
  nn::Matrix y;  // samples x 1
  std::vector<std::size_t> target_minute;  // trace index of each target
  double scale = 1.0;

  [[nodiscard]] std::size_t size() const noexcept { return x.rows(); }
  [[nodiscard]] std::size_t features() const noexcept { return x.cols(); }
};

SupervisedSet make_supervised(const DeviceTrace& trace, const WindowConfig& cfg,
                              std::size_t begin_minute, std::size_t end_minute);

/// Sequence form for the LSTM: xs[t] is (samples x features_per_step)
/// where each step carries [scaled watt, sin h, cos h] for that minute.
struct SequenceSet {
  std::vector<nn::Matrix> xs;  // window entries, each samples x step_features
  nn::Matrix y;                // samples x 1
  std::vector<std::size_t> target_minute;
  double scale = 1.0;

  [[nodiscard]] std::size_t size() const noexcept { return y.rows(); }
  [[nodiscard]] std::size_t step_features() const noexcept {
    return xs.empty() ? 0 : xs.front().cols();
  }
};

SequenceSet make_sequences(const DeviceTrace& trace, const WindowConfig& cfg,
                           std::size_t begin_minute, std::size_t end_minute);

/// The paper's 80/20 split point for a trace of `minutes`.
struct SplitPoint {
  std::size_t train_end;  // [0, train_end) is train, [train_end, n) test
};
SplitPoint train_test_split(std::size_t minutes, double train_fraction = 0.8);

/// The paper's prediction-accuracy metric: Ac = 1 - |V - RV| / RV,
/// clamped to [0, 1]. Minutes where the real value is below `floor_watts`
/// are skipped (the relative metric is undefined at 0 — i.e. device off).
double prediction_accuracy(double predicted_watts, double real_watts,
                           double floor_watts = 0.5) noexcept;

}  // namespace pfdrl::data
