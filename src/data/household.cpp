#include "data/household.hpp"

#include <algorithm>
#include <cmath>

namespace pfdrl::data {

namespace {

/// Shift a 24-entry hourly curve by a (possibly fractional) number of
/// hours with linear interpolation; wraps around midnight.
std::vector<double> shift_curve(const std::vector<double>& curve,
                                double shift_hours) {
  std::vector<double> out(24, 0.0);
  for (int h = 0; h < 24; ++h) {
    double src = static_cast<double>(h) - shift_hours;
    src = std::fmod(std::fmod(src, 24.0) + 24.0, 24.0);
    const int lo = static_cast<int>(src) % 24;
    const int hi = (lo + 1) % 24;
    const double frac = src - std::floor(src);
    out[static_cast<std::size_t>(h)] =
        curve[static_cast<std::size_t>(lo)] * (1.0 - frac) +
        curve[static_cast<std::size_t>(hi)] * frac;
  }
  return out;
}

struct ArchetypeTraits {
  double shift_hours;
  double activity_scale;
  double standby_waste_bias;  // added to off_after_use_prob (negative =
                              // more standby waste)
};

/// Behavioural traits for archetype `a` out of `total`. The first five
/// are hand-designed; beyond that, traits are procedurally spread so that
/// larger neighbourhoods contain genuinely new load patterns.
ArchetypeTraits archetype_traits(std::uint32_t a, std::uint32_t total) {
  // The five base archetypes differ mostly in activity level and standby
  // habits, with modest schedule shifts: device usage curves are largely
  // device-driven (dinner-time dishwashing happens everywhere), which is
  // what makes cross-residence parameter averaging productive.
  //
  // Procedurally generated archetypes (a >= 5, appearing only in large
  // neighbourhoods) add progressively *larger* schedule shifts — the
  // growing pattern diversity behind the paper's accuracy drop beyond
  // ~100 clients (Fig. 8).
  ArchetypeTraits t{0.0, 1.0, 0.0};
  switch (a % 5) {
    case 0:  // office worker: slightly early, average activity
      t = {-0.5, 1.0, 0.0};
      break;
    case 1:  // night owl
      t = {+1.25, 0.9, -0.05};
      break;
    case 2:  // family household: busy mornings and evenings
      t = {0.0, 1.4, +0.05};
      break;
    case 3:  // remote worker: flat daytime activity
      t = {+0.25, 1.15, -0.1};
      break;
    default:  // retiree: early, home most of the day
      t = {-0.75, 1.05, +0.1};
      break;
  }
  if (a >= 5) {
    const double novelty = static_cast<double>(a - 4);
    t.shift_hours += std::sin(a * 1.7) * std::min(4.0, 0.75 * novelty);
    t.activity_scale =
        std::max(0.4, t.activity_scale + 0.25 * std::cos(a * 2.3));
    (void)total;
  }
  return t;
}

}  // namespace

std::uint32_t effective_archetypes(const NeighborhoodConfig& cfg) noexcept {
  if (cfg.num_households <= cfg.archetype_growth_threshold) {
    return cfg.base_archetypes;
  }
  const std::uint32_t extra =
      (cfg.num_households - cfg.archetype_growth_threshold + 9) / 10;
  return cfg.base_archetypes + extra;
}

HouseholdProfile make_household(std::uint32_t id, std::uint32_t archetype,
                                std::uint32_t num_archetypes,
                                std::uint32_t min_devices,
                                std::uint32_t max_devices, util::Rng rng) {
  const ArchetypeTraits traits = archetype_traits(archetype, num_archetypes);

  HouseholdProfile home;
  home.id = id;
  home.archetype = archetype;
  home.name = "home" + std::to_string(id);
  home.schedule_shift_hours = traits.shift_hours + rng.normal(0.0, 0.25);
  home.activity_scale =
      std::max(0.3, traits.activity_scale * rng.normal(1.0, 0.08));

  const auto& catalog = device_catalog();
  const auto num_devices = static_cast<std::uint32_t>(rng.uniform_int(
      static_cast<std::int64_t>(min_devices),
      static_cast<std::int64_t>(max_devices)));

  // Every home has a fridge (always-on baseline); the rest are sampled
  // without replacement from the remaining catalog.
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].spec.type != DeviceType::kFridge) pool.push_back(i);
  }
  rng.shuffle(pool);

  std::vector<std::size_t> chosen;
  chosen.push_back(static_cast<std::size_t>(DeviceType::kFridge));
  for (std::size_t i = 0; i + 1 < num_devices && i < pool.size(); ++i) {
    chosen.push_back(pool[i]);
  }

  for (std::size_t idx : chosen) {
    const DeviceArchetype& proto = catalog[idx];
    HouseholdDevice dev;
    dev.spec = proto.spec;
    dev.spec.label = proto.spec.label + "@" + home.name;
    // Per-household electrical jitter: same device class, different make
    // and model — standby draw in particular varies widely between units
    // (LBNL standby surveys show multi-x spreads), which is what makes
    // the EMS decision thresholds household-specific.
    dev.spec.standby_watts *= rng.uniform(0.5, 2.0);
    dev.spec.on_watts *= rng.uniform(0.7, 1.4);
    dev.behavior = proto.behavior;
    dev.behavior.sessions_per_day *=
        home.activity_scale * rng.uniform(0.8, 1.2);
    dev.behavior.off_after_use_prob = std::clamp(
        dev.behavior.off_after_use_prob + traits.standby_waste_bias +
            rng.normal(0.0, 0.05),
        0.0, 0.95);
    if (dev.behavior.duty_cycling) {
      dev.behavior.duty_on_minutes *= rng.uniform(0.8, 1.3);
      dev.behavior.duty_off_minutes *= rng.uniform(0.8, 1.3);
    }
    dev.hourly_usage_weight =
        shift_curve(proto.hourly_usage_weight, home.schedule_shift_hours);
    home.devices.push_back(std::move(dev));
  }
  return home;
}

std::vector<HouseholdProfile> make_neighborhood(const NeighborhoodConfig& cfg) {
  const std::uint32_t num_arch = effective_archetypes(cfg);
  util::Rng root(cfg.seed);
  std::vector<HouseholdProfile> homes;
  homes.reserve(cfg.num_households);
  for (std::uint32_t i = 0; i < cfg.num_households; ++i) {
    const auto archetype = static_cast<std::uint32_t>(
        root.fork(i).uniform_int(0, static_cast<std::int64_t>(num_arch) - 1));
    homes.push_back(make_household(i, archetype, num_arch, cfg.min_devices,
                                   cfg.max_devices, root.fork(1000 + i)));
  }
  return homes;
}

}  // namespace pfdrl::data
