// Household profiles: a concrete, heterogeneous set of devices plus the
// behavioural parameters that shape their usage schedules.
//
// Heterogeneity (the non-IID property the paper's personalization layer
// exists for) enters in three ways:
//  1. household archetypes (worker / night owl / family / remote worker /
//     retiree, plus procedurally generated ones) shift & stretch the
//     hourly usage curves;
//  2. per-household jitter of device power levels and behaviour;
//  3. the archetype pool grows with the neighbourhood size, reproducing
//     the paper's accuracy drop past ~100 clients (Fig. 8): more homes
//     means more distinct load patterns getting averaged together.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/device.hpp"
#include "util/rng.hpp"

namespace pfdrl::data {

/// One concrete device owned by a household.
struct HouseholdDevice {
  DeviceSpec spec;
  DeviceBehavior behavior;
  std::vector<double> hourly_usage_weight;  // size 24, household-adjusted
};

struct HouseholdProfile {
  std::uint32_t id = 0;
  std::uint32_t archetype = 0;
  std::string name;
  /// Circular shift of all usage curves, in hours (e.g. night owls +3).
  double schedule_shift_hours = 0.0;
  /// Multiplier on evening/weekend activity (family vs single).
  double activity_scale = 1.0;
  std::vector<HouseholdDevice> devices;
};

struct NeighborhoodConfig {
  std::uint32_t num_households = 10;
  /// Devices per household sampled uniformly in [min, max].
  std::uint32_t min_devices = 4;
  std::uint32_t max_devices = 7;
  /// Base number of behavioural archetypes; the effective pool grows as
  /// num_households grows past `archetype_growth_threshold`.
  std::uint32_t base_archetypes = 5;
  std::uint32_t archetype_growth_threshold = 100;
  std::uint64_t seed = 42;
};

/// Number of distinct archetypes used for a neighbourhood of size n:
/// base for n <= threshold, then +1 archetype per 10 extra households.
std::uint32_t effective_archetypes(const NeighborhoodConfig& cfg) noexcept;

/// Deterministically sample the profiles of a whole neighbourhood.
std::vector<HouseholdProfile> make_neighborhood(const NeighborhoodConfig& cfg);

/// Sample one household (exposed for tests and examples).
HouseholdProfile make_household(std::uint32_t id, std::uint32_t archetype,
                                std::uint32_t num_archetypes,
                                std::uint32_t min_devices,
                                std::uint32_t max_devices, util::Rng rng);

}  // namespace pfdrl::data
