// Versioned run snapshots for warm-restart persistence.
//
// A RunSnapshot captures the full federation state of an EmsPipeline at
// an EMS-round boundary: every home's forecaster parameters + optimizer
// moments, every DQN agent's networks / Adam state / replay ring /
// exploration RNG / step counters, both message buses' fault-RNG streams
// and accounting, the deterministic metrics instruments, and the round
// counters the per-round RNG forks derive from. Restoring a snapshot
// into a freshly constructed pipeline (same traces, same config)
// continues the run bitwise — the crash-resume golden test in
// tests/sim_snapshot_test.cpp pins this.
//
// On disk a snapshot is a util::records stream (magic "PFRC", per-record
// CRC): record 0 is the header, record 1 the metrics, record 2 the bus
// states, then one record per DQN agent and one per forecaster. Files
// are written atomically (temp + rename), so a crash mid-save leaves the
// previous snapshot intact. See docs/persistence.md for the full format
// spec and the warm-restart semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "net/bus.hpp"
#include "obs/metrics.hpp"
#include "rl/dqn.hpp"
#include "sim/shard.hpp"
#include "util/rng.hpp"

namespace pfdrl::sim {

/// One DQN agent's state, addressed by (home, device index).
struct AgentSnapshot {
  std::uint64_t home = 0;
  std::uint64_t dev = 0;
  rl::DqnAgentState state;
};

/// One forecaster's parameters + training state. For the per-home
/// backends (Local / FL / FRL / PFDRL) the key is (home, device index);
/// for the Cloud backend `home` carries the data::DeviceType id of the
/// global model and `dev` is 0.
struct ForecasterSnapshot {
  std::uint64_t home = 0;
  std::uint64_t dev = 0;
  std::vector<double> parameters;
  std::vector<double> train_state;
};

/// A message bus's resumable state: the fault-RNG stream (so a resumed
/// chaos run draws the identical drop/delay mask) and the cumulative
/// accounting. In-flight inbox backlogs are intentionally NOT captured —
/// the exchange layer discards unread backlog as stale anyway
/// (docs/robustness.md).
struct BusSnapshot {
  bool present = false;
  util::RngState fault_rng;
  net::BusStats stats;
  /// Wire-codec delta state (per-sender previous-round params + lossy
  /// error-feedback accumulators; docs/wire.md). Empty when the bus has
  /// no codec attached or the file predates version 3. Restoring empty
  /// state simply forces keyframes on the next round, so codec-off
  /// snapshots resume into codec-on pipelines (and vice versa) cleanly;
  /// restoring captured state keeps a codec-on crash-resume bitwise
  /// identical in wire accounting too.
  std::vector<net::CodecStreamSnapshot> codec;
};

struct RunSnapshot {
  std::uint64_t seed = 0;
  std::uint32_t method = 0;           ///< core::EmsMethod
  std::uint32_t forecast_method = 0;  ///< forecast::Method
  std::uint64_t num_homes = 0;
  std::uint64_t ems_rounds_done = 0;
  /// Forecast-backend rounds (DflTrainer / CloudTrainer rounds_done).
  std::uint64_t forecast_rounds_done = 0;
  std::uint64_t raw_bytes_uploaded = 0;  ///< Cloud backend accounting.
  /// Trace minute the interrupted run had trained EMS up to — where a
  /// resumed run's train_ems() should continue from.
  std::uint64_t train_cursor_minutes = 0;
  bool cloud_backend = false;
  /// Shard identity of this (possibly partial) snapshot. Whole-run
  /// snapshots carry {0, 1}. Per-shard files written by a sharded
  /// SnapshotManager carry {k, S} and hold only shard k's agents and
  /// forecasters; the global state (buses, metrics, upload accounting)
  /// rides shard 0. Version-1 files deserialize as {0, 1}.
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// Round-synchronization engine the writing run used (core::SyncMode).
  /// Provenance only — the pipelined and BSP engines are bitwise
  /// interchangeable, so restore never enforces a match; a bsp-written
  /// file resumes under pipeline and vice versa. Pre-version-4 files
  /// read back as kBsp (0).
  std::uint32_t sync_mode = 0;
  BusSnapshot forecast_bus;
  BusSnapshot drl_bus;
  obs::MetricsSnapshot metrics;
  std::vector<AgentSnapshot> agents;
  std::vector<ForecasterSnapshot> forecasters;
};

/// Capture the pipeline's full resumable state. `train_cursor_minutes`
/// is recorded verbatim (the pipeline itself does not track minutes).
[[nodiscard]] RunSnapshot capture_run(const core::EmsPipeline& pipeline,
                                      std::uint64_t train_cursor_minutes = 0);

/// Restore a snapshot into a pipeline built from the same traces and
/// config. Validates seed / method / home count compatibility and every
/// parameter shape; throws std::runtime_error on mismatch. Invalidates
/// the forecast cache.
void restore_run(core::EmsPipeline& pipeline, const RunSnapshot& snapshot);

/// Restore only residence `home` (its agents and — for per-home
/// backends — its forecasters) from the snapshot, leaving every other
/// home and all global counters untouched: the warm restart of one
/// crashed home.
void restore_home(core::EmsPipeline& pipeline, const RunSnapshot& snapshot,
                  std::size_t home);

/// Snapshot <-> versioned record stream (util/records.hpp).
[[nodiscard]] std::vector<std::uint8_t> serialize_snapshot(
    const RunSnapshot& snapshot);
/// Throws std::runtime_error on truncated, corrupt or mis-versioned
/// input; never reads out of bounds.
[[nodiscard]] RunSnapshot deserialize_snapshot(
    std::span<const std::uint8_t> bytes);

/// Atomic file IO (temp + rename; a crash mid-save leaves the previous
/// file intact).
void save_snapshot(const RunSnapshot& snapshot, const std::string& path);
[[nodiscard]] RunSnapshot load_snapshot(const std::string& path);

// --- Per-shard snapshots (docs/scaling.md) ----------------------------
// A city-scale run persists one file per shard instead of one monolithic
// blob: shards save independently (smaller atomic writes, no 100k-agent
// serialization on one thread's critical path) and a warm restart only
// rereads the shards it hosts. split → save each → load → merge is
// byte-identical to the whole-run snapshot.

/// File path of shard `shard` under base path `base` ("run.snap" →
/// "run.snap.shard3").
[[nodiscard]] std::string shard_snapshot_path(const std::string& base,
                                              std::size_t shard);

/// Partition a whole-run snapshot into plan.shards per-shard parts.
/// Shard k receives the agents and forecasters of homes in shard k's
/// range (Cloud-backend global forecasters ride shard 0); every part
/// repeats the header scalars, and shard 0 additionally carries the bus
/// states, metrics and upload accounting. Requires plan.num_homes ==
/// snapshot.num_homes and a whole-run input (shard_count == 1).
[[nodiscard]] std::vector<RunSnapshot> split_shards(
    const RunSnapshot& snapshot, const ShardPlan& plan);

/// Reassemble a whole-run snapshot from per-shard parts (any order;
/// validated to be exactly one of each shard index with consistent
/// headers). Merging the output of split_shards reproduces the original
/// snapshot byte-for-byte after serialization.
[[nodiscard]] RunSnapshot merge_shards(const std::vector<RunSnapshot>& parts);

/// Split + atomically save one file per shard under `base`.
void save_sharded_snapshot(const RunSnapshot& snapshot,
                           const std::string& base, const ShardPlan& plan);

/// Load shard 0 of `base` to learn the shard count, then load and merge
/// every shard file. Throws on missing shards or header mismatch.
[[nodiscard]] RunSnapshot load_sharded_snapshot(const std::string& base);

/// Ties snapshots into a running pipeline via its hooks:
///  * after every `every_rounds`-th EMS round, captures the pipeline and
///    atomically rewrites `path` (and keeps the snapshot in memory);
///  * when a residence exits a crash window
///    (PipelineConfig::robustness.failures), warm-restarts it from the
///    last snapshot — the home's in-process learning state since that
///    snapshot is lost, exactly like a real process crash.
/// Must outlive all pipeline training calls; the destructor uninstalls
/// the hooks.
class SnapshotManager {
 public:
  struct Options {
    /// Snapshot file; empty keeps snapshots in memory only.
    std::string path;
    /// Save cadence in EMS rounds (0 disables periodic saves; saves can
    /// still be forced via save_now()).
    std::uint64_t every_rounds = 1;
    /// Minute range of the upcoming train_ems() call, used to stamp
    /// train_cursor_minutes into periodic saves.
    std::uint64_t train_begin_minute = 0;
    std::uint64_t train_end_minute = 0;
    /// >= 2 writes one file per shard (shard_snapshot_path(path, k))
    /// instead of a single monolithic file; 0/1 keeps the legacy
    /// whole-run file. The in-memory snapshot stays whole-run either
    /// way, so per-home warm restarts are unchanged.
    std::size_t shards = 0;
  };

  SnapshotManager(core::EmsPipeline& pipeline, Options options);
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;
  ~SnapshotManager();

  /// Capture + save immediately (refreshes the in-memory snapshot too).
  void save_now();

  /// Last captured snapshot; nullptr before the first save.
  [[nodiscard]] const RunSnapshot* last() const noexcept {
    return last_ ? &*last_ : nullptr;
  }
  [[nodiscard]] std::uint64_t saves() const noexcept { return saves_; }
  [[nodiscard]] std::uint64_t home_restarts() const noexcept {
    return home_restarts_;
  }

 private:
  [[nodiscard]] std::uint64_t cursor_for_rounds(std::uint64_t rounds) const;
  /// Write last_ to disk — whole-run or per-shard per options_.shards.
  void persist() const;

  core::EmsPipeline& pipeline_;
  Options options_;
  /// ems_rounds_done() at install time — rounds run before this
  /// train_ems() window don't advance the cursor.
  std::uint64_t baseline_rounds_ = 0;
  std::optional<RunSnapshot> last_;
  std::uint64_t saves_ = 0;
  std::uint64_t home_restarts_ = 0;
};

}  // namespace pfdrl::sim
