// Experiment drivers shared by the benchmark binaries: pipeline-config
// presets sized to laptop runtimes, and the day-by-day convergence run
// behind the paper's Fig. 9 / Fig. 11 comparisons.
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace pfdrl::sim {

/// Pipeline preset with the paper's hyperparameters (lr 1e-3, discount
/// 0.9, replay 2000, target replace 100, 8x100 DQN, alpha 6, beta/gamma
/// 12 h) — used by the headline benches.
core::PipelineConfig paper_pipeline(core::EmsMethod method,
                                    std::uint64_t seed = 123);

/// Cheap pipeline for tests and quick sweeps: small DQN (4x32), short
/// forecaster training. Same structure, minutes instead of tens of
/// minutes of wall time.
core::PipelineConfig fast_pipeline(core::EmsMethod method,
                                   std::uint64_t seed = 123);

/// Benchmark pipeline: the paper's 8-hidden-layer DQN topology at a
/// narrower width (8x48) and the BP forecaster, sized so that multi-point
/// sweeps (alpha, gamma, method comparisons) finish in minutes on one
/// core while keeping every structural property (alpha ranges over 8
/// hidden layers, gamma-scheduled federation, same state/reward).
core::PipelineConfig bench_pipeline(core::EmsMethod method,
                                    std::uint64_t seed = 123);

/// One point of the saved-energy-vs-training-days curve.
struct ConvergencePoint {
  std::size_t day = 0;  // 1-based day index
  /// Net saved energy (standby reclaimed minus interrupted-use energy).
  double saved_kwh_per_client = 0.0;
  double saved_fraction = 0.0;      // net, of available standby energy
  double gross_saved_fraction = 0.0;  // ignores comfort violations
  double comfort_violations_per_client = 0.0;
  double mean_reward_per_step = 0.0;
};

/// Train the pipeline day by day on the scenario and evaluate the greedy
/// policy on each trained day (paper Fig. 9 protocol: performance as a
/// function of accumulated training days).
///
/// Day 0 trains the forecasters on the first `forecast_train_days` days;
/// EMS training then consumes one day at a time.
std::vector<ConvergencePoint> run_convergence(
    const Scenario& scenario, const core::PipelineConfig& cfg,
    std::size_t forecast_train_days, std::size_t ems_days);

}  // namespace pfdrl::sim
