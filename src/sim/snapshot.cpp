#include "sim/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/method.hpp"
#include "fl/baselines.hpp"
#include "fl/dfl.hpp"
#include "forecast/forecaster.hpp"
#include "net/fault.hpp"
#include "util/records.hpp"

namespace pfdrl::sim {

namespace {

/// Snapshot payload layout version, independent of the record-stream
/// framing version (util::records::kVersion covers the framing; this
/// covers what the payloads mean). Version 2 appended the shard identity
/// (shard_index, shard_count) to the header; version 3 appended the
/// logical-byte counter and the wire-codec delta streams to each bus
/// state (docs/wire.md); version 4 appended the writing run's
/// round-synchronization engine (core::SyncMode) to the header. Older
/// files are still readable: version-1 deserializes as a whole-run
/// snapshot ({0, 1}), pre-3 bus states read back with logical_bytes =
/// bytes_on_wire (identical by definition when no codec ran) and empty
/// codec state, and pre-4 headers read back as kBsp — provenance only
/// either way, since the two engines are bitwise interchangeable.
constexpr std::uint32_t kSnapshotVersion = 4;

// --- Little-endian payload codec --------------------------------------
// All multi-byte fields are little-endian. The reader bounds-checks
// every length prefix against the remaining bytes BEFORE allocating or
// advancing, so hostile input ends in a clean throw, never an OOB read
// or a pathological allocation.

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) {
    std::uint64_t raw;
    std::memcpy(&raw, &v, sizeof raw);
    u64(raw);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void rng(const util::RngState& s) {
    for (std::uint64_t word : s.s) u64(word);
    f64(s.cached_normal);
    u8(s.has_cached_normal ? 1 : 0);
    u64(s.seed);
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : rest_(bytes) {}

  std::uint8_t u8() {
    need(1);
    const std::uint8_t v = rest_[0];
    rest_ = rest_.subspan(1);
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{rest_[i]} << (8 * i);
    rest_ = rest_.subspan(4);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{rest_[i]} << (8 * i);
    rest_ = rest_.subspan(8);
    return v;
  }
  double f64() {
    const std::uint64_t raw = u64();
    double v;
    std::memcpy(&v, &raw, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(rest_.data()),
                  static_cast<std::size_t>(n));
    rest_ = rest_.subspan(static_cast<std::size_t>(n));
    return s;
  }
  std::vector<double> f64_vec() {
    const std::uint64_t n = u64();
    // Compare against remaining/8 (not n*8, which could overflow) before
    // reserving anything.
    if (n > rest_.size() / 8) {
      throw std::runtime_error("snapshot: truncated record");
    }
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }
  util::RngState rng() {
    util::RngState s;
    for (auto& word : s.s) word = u64();
    s.cached_normal = f64();
    s.has_cached_normal = u8() != 0;
    s.seed = u64();
    return s;
  }
  void expect_done() const {
    if (!rest_.empty()) {
      throw std::runtime_error("snapshot: trailing bytes in record");
    }
  }

 private:
  void need(std::uint64_t n) const {
    if (n > rest_.size()) {
      throw std::runtime_error("snapshot: truncated record");
    }
  }
  std::span<const std::uint8_t> rest_;
};

void write_bus(ByteWriter& w, const BusSnapshot& bus) {
  w.u8(bus.present ? 1 : 0);
  w.rng(bus.fault_rng);
  w.u64(bus.stats.messages_sent);
  w.u64(bus.stats.messages_delivered);
  w.u64(bus.stats.messages_dropped);
  w.u64(bus.stats.messages_partition_dropped);
  w.u64(bus.stats.messages_duplicated);
  w.u64(bus.stats.messages_delayed);
  w.u64(bus.stats.bytes_on_wire);
  w.f64(bus.stats.simulated_transfer_seconds);
  w.f64(bus.stats.simulated_fault_delay_seconds);
  // Version-3 tail: logical bytes + wire-codec delta streams.
  w.u64(bus.stats.logical_bytes);
  w.u64(bus.codec.size());
  for (const net::CodecStreamSnapshot& s : bus.codec) {
    w.u64(s.sender);
    w.u8(s.kind);
    w.u32(s.device_type);
    w.f64_vec(s.prev);
    w.f64_vec(s.err);
  }
}

BusSnapshot read_bus(ByteReader& r, std::uint32_t version) {
  BusSnapshot bus;
  bus.present = r.u8() != 0;
  bus.fault_rng = r.rng();
  bus.stats.messages_sent = r.u64();
  bus.stats.messages_delivered = r.u64();
  bus.stats.messages_dropped = r.u64();
  bus.stats.messages_partition_dropped = r.u64();
  bus.stats.messages_duplicated = r.u64();
  bus.stats.messages_delayed = r.u64();
  bus.stats.bytes_on_wire = r.u64();
  bus.stats.simulated_transfer_seconds = r.f64();
  bus.stats.simulated_fault_delay_seconds = r.f64();
  if (version >= 3) {
    bus.stats.logical_bytes = r.u64();
    const std::uint64_t n_streams = r.u64();
    bus.codec.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n_streams, 1 << 20)));
    for (std::uint64_t i = 0; i < n_streams; ++i) {
      net::CodecStreamSnapshot s;
      s.sender = r.u64();
      s.kind = r.u8();
      s.device_type = r.u32();
      s.prev = r.f64_vec();
      s.err = r.f64_vec();
      bus.codec.push_back(std::move(s));
    }
  } else {
    // Pre-codec files: every byte billed was a logical byte.
    bus.stats.logical_bytes = bus.stats.bytes_on_wire;
  }
  return bus;
}

std::vector<std::uint8_t> encode_agent(const AgentSnapshot& a) {
  ByteWriter w;
  w.u64(a.home);
  w.u64(a.dev);
  w.f64_vec(a.state.online_params);
  w.f64_vec(a.state.target_params);
  w.u64(static_cast<std::uint64_t>(a.state.optimizer.t));
  w.f64_vec(a.state.optimizer.m);
  w.f64_vec(a.state.optimizer.v);
  w.u64(a.state.replay.entries.size());
  for (const rl::Transition& t : a.state.replay.entries) {
    w.f64_vec(t.state);
    w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(t.action)));
    w.f64(t.reward);
    w.f64_vec(t.next_state);
    w.u8(t.terminal ? 1 : 0);
  }
  w.u64(a.state.replay.next);
  w.u64(a.state.replay.total_pushed);
  w.rng(a.state.rng);
  w.u64(a.state.act_steps);
  w.u64(a.state.learn_steps);
  return w.take();
}

AgentSnapshot decode_agent(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  AgentSnapshot a;
  a.home = r.u64();
  a.dev = r.u64();
  a.state.online_params = r.f64_vec();
  a.state.target_params = r.f64_vec();
  a.state.optimizer.t = static_cast<long>(r.u64());
  a.state.optimizer.m = r.f64_vec();
  a.state.optimizer.v = r.f64_vec();
  const std::uint64_t n_entries = r.u64();
  a.state.replay.entries.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(n_entries, 1 << 20)));
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    rl::Transition t;
    t.state = r.f64_vec();
    t.action = static_cast<int>(static_cast<std::int64_t>(r.u64()));
    t.reward = r.f64();
    t.next_state = r.f64_vec();
    t.terminal = r.u8() != 0;
    a.state.replay.entries.push_back(std::move(t));
  }
  a.state.replay.next = static_cast<std::size_t>(r.u64());
  a.state.replay.total_pushed = r.u64();
  a.state.rng = r.rng();
  a.state.act_steps = r.u64();
  a.state.learn_steps = r.u64();
  r.expect_done();
  return a;
}

std::vector<std::uint8_t> encode_forecaster(const ForecasterSnapshot& f) {
  ByteWriter w;
  w.u64(f.home);
  w.u64(f.dev);
  w.f64_vec(f.parameters);
  w.f64_vec(f.train_state);
  return w.take();
}

ForecasterSnapshot decode_forecaster(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  ForecasterSnapshot f;
  f.home = r.u64();
  f.dev = r.u64();
  f.parameters = r.f64_vec();
  f.train_state = r.f64_vec();
  r.expect_done();
  return f;
}

}  // namespace

// --- Capture / restore ------------------------------------------------

RunSnapshot capture_run(const core::EmsPipeline& pipeline,
                        std::uint64_t train_cursor_minutes) {
  const core::PipelineConfig& cfg = pipeline.config();
  RunSnapshot snap;
  snap.seed = cfg.seed;
  snap.method = static_cast<std::uint32_t>(cfg.method);
  snap.forecast_method = static_cast<std::uint32_t>(cfg.forecast_method);
  snap.num_homes = pipeline.num_homes();
  snap.ems_rounds_done = pipeline.ems_rounds_done();
  snap.train_cursor_minutes = train_cursor_minutes;
  snap.sync_mode = static_cast<std::uint32_t>(cfg.sync_mode);

  for (std::size_t h = 0; h < pipeline.num_homes(); ++h) {
    for (std::size_t d = 0; d < pipeline.num_devices(h); ++d) {
      const rl::DqnAgent* agent = pipeline.agent_ptr(h, d);
      if (!agent) continue;
      snap.agents.push_back({h, d, agent->capture_state()});
    }
  }

  if (const fl::CloudTrainer* cloud = pipeline.cloud_trainer()) {
    snap.cloud_backend = true;
    snap.forecast_rounds_done = cloud->rounds_done();
    snap.raw_bytes_uploaded = cloud->raw_bytes_uploaded();
    for (data::DeviceType type : cloud->model_types()) {
      const forecast::Forecaster& model = cloud->model_for_type(type);
      const auto params = model.parameters();
      snap.forecasters.push_back({static_cast<std::uint64_t>(type),
                                  0,
                                  {params.begin(), params.end()},
                                  model.train_state()});
    }
  } else if (const fl::DflTrainer* dfl = pipeline.dfl_trainer()) {
    snap.forecast_rounds_done = dfl->rounds_done();
    for (std::size_t h = 0; h < pipeline.num_homes(); ++h) {
      for (std::size_t d = 0; d < pipeline.num_devices(h); ++d) {
        const forecast::Forecaster& model = dfl->forecaster(h, d);
        const auto params = model.parameters();
        snap.forecasters.push_back(
            {h, d, {params.begin(), params.end()}, model.train_state()});
      }
    }
    snap.forecast_bus.present = true;
    snap.forecast_bus.fault_rng = dfl->bus().fault_rng_state();
    snap.forecast_bus.stats = dfl->bus().stats();
    if (const net::WireCodec* codec = dfl->bus().codec()) {
      snap.forecast_bus.codec = codec->capture_streams();
    }
  }

  if (const core::DrlFederation* fed = pipeline.drl_federation()) {
    snap.drl_bus.present = true;
    snap.drl_bus.fault_rng = fed->bus().fault_rng_state();
    snap.drl_bus.stats = fed->bus().stats();
    if (const net::WireCodec* codec = fed->bus().codec()) {
      snap.drl_bus.codec = codec->capture_streams();
    }
  }

  snap.metrics = pipeline.metrics().capture_state();
  return snap;
}

namespace {

void check_compatible(const core::EmsPipeline& pipeline,
                      const RunSnapshot& snap) {
  const core::PipelineConfig& cfg = pipeline.config();
  if (snap.seed != cfg.seed ||
      snap.method != static_cast<std::uint32_t>(cfg.method) ||
      snap.forecast_method !=
          static_cast<std::uint32_t>(cfg.forecast_method) ||
      snap.num_homes != pipeline.num_homes()) {
    throw std::runtime_error(
        "snapshot: incompatible with this pipeline "
        "(seed/method/forecast-method/home-count mismatch)");
  }
}

void restore_agent(core::EmsPipeline& pipeline, const AgentSnapshot& a) {
  rl::DqnAgent* agent = pipeline.mutable_agent(
      static_cast<std::size_t>(a.home), static_cast<std::size_t>(a.dev));
  if (!agent) {
    throw std::runtime_error("snapshot: agent slot is a protected device");
  }
  try {
    agent->restore_state(a.state);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("snapshot: ") + e.what());
  }
}

void restore_forecaster_into(forecast::Forecaster& model,
                             const ForecasterSnapshot& f) {
  if (model.parameters().size() != f.parameters.size()) {
    throw std::runtime_error("snapshot: forecaster shape mismatch");
  }
  model.set_parameters(f.parameters);
  try {
    model.set_train_state(f.train_state);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("snapshot: ") + e.what());
  }
}

}  // namespace

void restore_run(core::EmsPipeline& pipeline, const RunSnapshot& snap) {
  check_compatible(pipeline, snap);
  if (snap.cloud_backend != (pipeline.cloud_trainer() != nullptr)) {
    throw std::runtime_error("snapshot: forecast backend mismatch");
  }

  pipeline.set_ems_rounds_done(snap.ems_rounds_done);
  for (const AgentSnapshot& a : snap.agents) restore_agent(pipeline, a);

  if (fl::CloudTrainer* cloud = pipeline.cloud_trainer()) {
    cloud->set_rounds_done(snap.forecast_rounds_done);
    cloud->set_raw_bytes_uploaded(snap.raw_bytes_uploaded);
    for (const ForecasterSnapshot& f : snap.forecasters) {
      restore_forecaster_into(
          cloud->mutable_model_for_type(static_cast<data::DeviceType>(f.home)),
          f);
    }
  } else if (fl::DflTrainer* dfl = pipeline.dfl_trainer()) {
    dfl->set_rounds_done(snap.forecast_rounds_done);
    for (const ForecasterSnapshot& f : snap.forecasters) {
      restore_forecaster_into(
          dfl->mutable_forecaster(static_cast<std::size_t>(f.home),
                                  static_cast<std::size_t>(f.dev)),
          f);
    }
    if (snap.forecast_bus.present) {
      dfl->bus().restore_fault_rng(snap.forecast_bus.fault_rng);
      dfl->bus().restore_stats(snap.forecast_bus.stats);
      if (net::WireCodec* codec = dfl->bus().codec()) {
        codec->restore_streams(snap.forecast_bus.codec);
      }
    }
  }

  if (core::DrlFederation* fed = pipeline.drl_federation();
      fed && snap.drl_bus.present) {
    fed->bus().restore_fault_rng(snap.drl_bus.fault_rng);
    fed->bus().restore_stats(snap.drl_bus.stats);
    if (net::WireCodec* codec = fed->bus().codec()) {
      codec->restore_streams(snap.drl_bus.codec);
    }
  }

  pipeline.metrics().restore_state(snap.metrics);
  pipeline.invalidate_forecast_cache();
}

void restore_home(core::EmsPipeline& pipeline, const RunSnapshot& snap,
                  std::size_t home) {
  check_compatible(pipeline, snap);
  for (const AgentSnapshot& a : snap.agents) {
    if (a.home == home) restore_agent(pipeline, a);
  }
  // Per-home forecasters only: the Cloud backend's global models live on
  // the server, which did not crash with the home.
  if (fl::DflTrainer* dfl = pipeline.dfl_trainer()) {
    for (const ForecasterSnapshot& f : snap.forecasters) {
      if (f.home != home) continue;
      restore_forecaster_into(
          dfl->mutable_forecaster(static_cast<std::size_t>(f.home),
                                  static_cast<std::size_t>(f.dev)),
          f);
    }
  }
  pipeline.invalidate_forecast_cache();
}

// --- Serialization ----------------------------------------------------

std::vector<std::uint8_t> serialize_snapshot(const RunSnapshot& snap) {
  util::RecordWriter writer;

  {  // Record 0: header.
    ByteWriter w;
    w.u32(kSnapshotVersion);
    w.u64(snap.seed);
    w.u32(snap.method);
    w.u32(snap.forecast_method);
    w.u64(snap.num_homes);
    w.u64(snap.ems_rounds_done);
    w.u64(snap.forecast_rounds_done);
    w.u64(snap.raw_bytes_uploaded);
    w.u64(snap.train_cursor_minutes);
    w.u8(snap.cloud_backend ? 1 : 0);
    w.u64(snap.agents.size());
    w.u64(snap.forecasters.size());
    w.u64(snap.shard_index);
    w.u64(snap.shard_count);
    w.u32(snap.sync_mode);
    writer.append(w.take());
  }
  {  // Record 1: metrics.
    ByteWriter w;
    w.u64(snap.metrics.counters.size());
    for (const auto& [name, value] : snap.metrics.counters) {
      w.str(name);
      w.u64(value);
    }
    w.u64(snap.metrics.gauges.size());
    for (const auto& [name, value] : snap.metrics.gauges) {
      w.str(name);
      w.f64(value);
    }
    w.u64(snap.metrics.series.size());
    for (const auto& [name, values] : snap.metrics.series) {
      w.str(name);
      w.f64_vec(values);
    }
    writer.append(w.take());
  }
  {  // Record 2: bus states.
    ByteWriter w;
    write_bus(w, snap.forecast_bus);
    write_bus(w, snap.drl_bus);
    writer.append(w.take());
  }
  for (const AgentSnapshot& a : snap.agents) writer.append(encode_agent(a));
  for (const ForecasterSnapshot& f : snap.forecasters) {
    writer.append(encode_forecaster(f));
  }
  return writer.bytes();
}

RunSnapshot deserialize_snapshot(std::span<const std::uint8_t> bytes) {
  util::RecordReader reader(bytes);
  const auto next_record = [&reader] {
    auto rec = reader.next();
    if (!rec) throw std::runtime_error("snapshot: missing record");
    return *rec;
  };

  RunSnapshot snap;
  std::uint64_t n_agents = 0;
  std::uint64_t n_forecasters = 0;
  std::uint32_t version = 0;
  {
    ByteReader r(next_record());
    version = r.u32();
    if (version < 1 || version > kSnapshotVersion) {
      throw std::runtime_error("snapshot: unsupported snapshot version");
    }
    snap.seed = r.u64();
    snap.method = r.u32();
    snap.forecast_method = r.u32();
    snap.num_homes = r.u64();
    snap.ems_rounds_done = r.u64();
    snap.forecast_rounds_done = r.u64();
    snap.raw_bytes_uploaded = r.u64();
    snap.train_cursor_minutes = r.u64();
    snap.cloud_backend = r.u8() != 0;
    n_agents = r.u64();
    n_forecasters = r.u64();
    if (version >= 2) {
      snap.shard_index = r.u64();
      snap.shard_count = r.u64();
      if (snap.shard_count == 0 || snap.shard_index >= snap.shard_count) {
        throw std::runtime_error("snapshot: invalid shard identity");
      }
    }
    if (version >= 4) snap.sync_mode = r.u32();
    r.expect_done();
  }
  {
    ByteReader r(next_record());
    const std::uint64_t n_counters = r.u64();
    for (std::uint64_t i = 0; i < n_counters; ++i) {
      std::string name = r.str();
      snap.metrics.counters[std::move(name)] = r.u64();
    }
    const std::uint64_t n_gauges = r.u64();
    for (std::uint64_t i = 0; i < n_gauges; ++i) {
      std::string name = r.str();
      snap.metrics.gauges[std::move(name)] = r.f64();
    }
    const std::uint64_t n_series = r.u64();
    for (std::uint64_t i = 0; i < n_series; ++i) {
      std::string name = r.str();
      snap.metrics.series[std::move(name)] = r.f64_vec();
    }
    r.expect_done();
  }
  {
    ByteReader r(next_record());
    snap.forecast_bus = read_bus(r, version);
    snap.drl_bus = read_bus(r, version);
    r.expect_done();
  }
  for (std::uint64_t i = 0; i < n_agents; ++i) {
    snap.agents.push_back(decode_agent(next_record()));
  }
  for (std::uint64_t i = 0; i < n_forecasters; ++i) {
    snap.forecasters.push_back(decode_forecaster(next_record()));
  }
  if (reader.next().has_value()) {
    throw std::runtime_error("snapshot: trailing records");
  }
  return snap;
}

void save_snapshot(const RunSnapshot& snap, const std::string& path) {
  util::atomic_write_file(path, serialize_snapshot(snap));
}

RunSnapshot load_snapshot(const std::string& path) {
  const std::vector<std::uint8_t> bytes = util::read_file(path);
  return deserialize_snapshot(bytes);
}

// --- Per-shard snapshots ----------------------------------------------

std::string shard_snapshot_path(const std::string& base, std::size_t shard) {
  return base + ".shard" + std::to_string(shard);
}

namespace {

/// Header scalars every shard part repeats (so any single file is enough
/// to identify the run it belongs to and rebuild the ShardPlan).
void copy_header_scalars(RunSnapshot& dst, const RunSnapshot& src) {
  dst.seed = src.seed;
  dst.method = src.method;
  dst.forecast_method = src.forecast_method;
  dst.num_homes = src.num_homes;
  dst.ems_rounds_done = src.ems_rounds_done;
  dst.forecast_rounds_done = src.forecast_rounds_done;
  dst.train_cursor_minutes = src.train_cursor_minutes;
  dst.cloud_backend = src.cloud_backend;
  dst.sync_mode = src.sync_mode;
}

}  // namespace

std::vector<RunSnapshot> split_shards(const RunSnapshot& snapshot,
                                      const ShardPlan& plan) {
  if (snapshot.shard_count != 1) {
    throw std::invalid_argument("split_shards: input is already a shard part");
  }
  if (plan.num_homes != snapshot.num_homes) {
    throw std::invalid_argument("split_shards: plan/home-count mismatch");
  }
  std::vector<RunSnapshot> parts(plan.shards);
  for (std::size_t k = 0; k < plan.shards; ++k) {
    copy_header_scalars(parts[k], snapshot);
    parts[k].shard_index = k;
    parts[k].shard_count = plan.shards;
  }
  // Global (non-per-home) state rides shard 0 only, so merging never
  // double-counts and the other shard files stay purely per-home.
  parts[0].raw_bytes_uploaded = snapshot.raw_bytes_uploaded;
  parts[0].forecast_bus = snapshot.forecast_bus;
  parts[0].drl_bus = snapshot.drl_bus;
  parts[0].metrics = snapshot.metrics;
  for (const AgentSnapshot& a : snapshot.agents) {
    parts[plan.shard_of(static_cast<std::size_t>(a.home))].agents.push_back(a);
  }
  for (const ForecasterSnapshot& f : snapshot.forecasters) {
    // Cloud-backend forecasters are global per-device-type models keyed
    // by type, not by home — they live with the rest of the global state.
    const std::size_t k =
        snapshot.cloud_backend
            ? 0
            : plan.shard_of(static_cast<std::size_t>(f.home));
    parts[k].forecasters.push_back(f);
  }
  return parts;
}

RunSnapshot merge_shards(const std::vector<RunSnapshot>& parts) {
  if (parts.empty()) {
    throw std::invalid_argument("merge_shards: no parts");
  }
  const std::uint64_t count = parts.front().shard_count;
  if (count != parts.size()) {
    throw std::invalid_argument("merge_shards: wrong number of parts");
  }
  std::vector<const RunSnapshot*> ordered(parts.size(), nullptr);
  for (const RunSnapshot& p : parts) {
    if (p.shard_count != count || p.shard_index >= count ||
        p.seed != parts.front().seed ||
        p.num_homes != parts.front().num_homes ||
        p.ems_rounds_done != parts.front().ems_rounds_done) {
      throw std::invalid_argument("merge_shards: inconsistent shard headers");
    }
    if (ordered[static_cast<std::size_t>(p.shard_index)] != nullptr) {
      throw std::invalid_argument("merge_shards: duplicate shard index");
    }
    ordered[static_cast<std::size_t>(p.shard_index)] = &p;
  }
  RunSnapshot merged;
  copy_header_scalars(merged, *ordered[0]);
  merged.raw_bytes_uploaded = ordered[0]->raw_bytes_uploaded;
  merged.forecast_bus = ordered[0]->forecast_bus;
  merged.drl_bus = ordered[0]->drl_bus;
  merged.metrics = ordered[0]->metrics;
  // Ascending shard order = ascending home order = the order capture_run
  // itself emits, so a split → merge round trip is byte-identical.
  for (const RunSnapshot* p : ordered) {
    merged.agents.insert(merged.agents.end(), p->agents.begin(),
                         p->agents.end());
    merged.forecasters.insert(merged.forecasters.end(),
                              p->forecasters.begin(), p->forecasters.end());
  }
  return merged;
}

void save_sharded_snapshot(const RunSnapshot& snapshot,
                           const std::string& base, const ShardPlan& plan) {
  const std::vector<RunSnapshot> parts = split_shards(snapshot, plan);
  for (std::size_t k = 0; k < parts.size(); ++k) {
    save_snapshot(parts[k], shard_snapshot_path(base, k));
  }
}

RunSnapshot load_sharded_snapshot(const std::string& base) {
  RunSnapshot first = load_snapshot(shard_snapshot_path(base, 0));
  const auto count = static_cast<std::size_t>(first.shard_count);
  std::vector<RunSnapshot> parts;
  parts.reserve(count);
  parts.push_back(std::move(first));
  for (std::size_t k = 1; k < count; ++k) {
    parts.push_back(load_snapshot(shard_snapshot_path(base, k)));
  }
  return merge_shards(parts);
}

// --- SnapshotManager --------------------------------------------------

namespace {

/// A home that was down during the just-completed round could not have
/// written a snapshot of its own: freeze its entries at the previous
/// snapshot's values, so a later warm restart reloads the last state the
/// home actually persisted before it died — not state "recorded" while
/// it was dark.
void freeze_crashed_homes(RunSnapshot& fresh, const RunSnapshot& prev,
                          const net::FailureSchedule& failures,
                          std::uint64_t completed_round) {
  if (failures.crashes.empty()) return;
  for (AgentSnapshot& a : fresh.agents) {
    if (!failures.crashed(static_cast<net::AgentId>(a.home), completed_round)) {
      continue;
    }
    for (const AgentSnapshot& p : prev.agents) {
      if (p.home == a.home && p.dev == a.dev) {
        a.state = p.state;
        break;
      }
    }
  }
  if (fresh.cloud_backend) return;  // global models live on the server
  for (ForecasterSnapshot& f : fresh.forecasters) {
    if (!failures.crashed(static_cast<net::AgentId>(f.home), completed_round)) {
      continue;
    }
    for (const ForecasterSnapshot& p : prev.forecasters) {
      if (p.home == f.home && p.dev == f.dev) {
        f.parameters = p.parameters;
        f.train_state = p.train_state;
        break;
      }
    }
  }
}

}  // namespace

SnapshotManager::SnapshotManager(core::EmsPipeline& pipeline, Options options)
    : pipeline_(pipeline),
      options_(std::move(options)),
      baseline_rounds_(pipeline.ems_rounds_done()) {
  // The cadence is passed through so the pipelined engine only quiesces
  // at rounds where this hook would actually save (the hook's own gate
  // stays — the BSP engine still calls it every round).
  pipeline_.set_on_round_end(
      [this](std::uint64_t rounds_done) {
        if (options_.every_rounds == 0) return;
        if ((rounds_done - baseline_rounds_) % options_.every_rounds != 0) {
          return;
        }
        RunSnapshot fresh =
            capture_run(pipeline_, cursor_for_rounds(rounds_done));
        if (last_) {
          freeze_crashed_homes(fresh, *last_,
                               pipeline_.config().robustness.failures,
                               rounds_done - 1);
        }
        last_ = std::move(fresh);
        persist();
        ++saves_;
      },
      options_.every_rounds);
  pipeline_.set_on_home_restart([this](std::size_t home) {
    // No snapshot yet → nothing durable to reload; the home keeps its
    // state (degenerates to the original uplink-loss model).
    if (!last_) return;
    restore_home(pipeline_, *last_, home);
    ++home_restarts_;
  });
}

SnapshotManager::~SnapshotManager() {
  pipeline_.set_on_round_end(nullptr);
  pipeline_.set_on_home_restart(nullptr);
}

void SnapshotManager::save_now() {
  last_ = capture_run(pipeline_,
                      cursor_for_rounds(pipeline_.ems_rounds_done()));
  persist();
  ++saves_;
}

void SnapshotManager::persist() const {
  if (options_.path.empty() || !last_) return;
  if (options_.shards >= 2) {
    save_sharded_snapshot(
        *last_, options_.path,
        ShardPlan::make(pipeline_.num_homes(), options_.shards));
  } else {
    save_snapshot(*last_, options_.path);
  }
}

std::uint64_t SnapshotManager::cursor_for_rounds(
    std::uint64_t rounds) const {
  const auto round_minutes = static_cast<std::uint64_t>(
      pipeline_.config().gamma_hours * 60.0);
  const std::uint64_t advanced =
      (rounds - baseline_rounds_) * std::max<std::uint64_t>(1, round_minutes);
  const std::uint64_t cursor = options_.train_begin_minute + advanced;
  return options_.train_end_minute > 0
             ? std::min(cursor, options_.train_end_minute)
             : cursor;
}

}  // namespace pfdrl::sim
