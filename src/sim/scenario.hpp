// A scenario bundles a generated neighbourhood (household profiles) with
// its minute-level load traces — the complete synthetic stand-in for one
// Pecan-Street-style deployment. Generation is deterministic per seed
// and parallelised across households.
#pragma once

#include <cstddef>
#include <vector>

#include "data/household.hpp"
#include "data/trace.hpp"

namespace pfdrl::sim {

struct ScenarioConfig {
  data::NeighborhoodConfig neighborhood{};
  data::TraceConfig trace{};
};

struct Scenario {
  ScenarioConfig config{};
  std::vector<data::HouseholdProfile> profiles;
  std::vector<data::HouseholdTrace> traces;

  [[nodiscard]] std::size_t minutes() const noexcept {
    return traces.empty() ? 0 : traces.front().minutes();
  }
  [[nodiscard]] std::size_t num_homes() const noexcept {
    return traces.size();
  }
  [[nodiscard]] std::size_t num_devices() const noexcept;

  /// Ground-truth standby energy available across all homes over
  /// [begin, end) minutes (kWh).
  [[nodiscard]] double total_standby_kwh(std::size_t begin,
                                         std::size_t end) const;

  static Scenario generate(const ScenarioConfig& cfg);
};

/// Preset scales used by tests / examples / benches. All deterministic.
ScenarioConfig tiny_scenario(std::uint64_t seed = 42);    // 2 homes, 2 days
ScenarioConfig small_scenario(std::uint64_t seed = 42);   // 5 homes, 4 days
ScenarioConfig medium_scenario(std::uint64_t seed = 42);  // 10 homes, 8 days

}  // namespace pfdrl::sim
