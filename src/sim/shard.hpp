// Shard plan for the bulk-synchronous engine (docs/scaling.md).
//
// A ShardPlan pins the home → shard assignment for a run: contiguous,
// balanced buckets computed from (num_homes, shards) alone, via the same
// util::shard arithmetic the runtime fan-out uses. Because the plan is a
// pure function of those two numbers, a resumed run reconstructs the
// identical assignment without persisting it — per-shard snapshot files
// only need to carry (shard_index, shard_count).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace pfdrl::sim {

struct ShardPlan {
  std::size_t num_homes = 0;
  std::size_t shards = 1;
  /// Cost-weighted boundaries (make_weighted). Empty for the uniform
  /// plan; otherwise shards+1 strictly increasing home indices with
  /// boundaries[0] == 0 and boundaries[shards] == num_homes — shard k
  /// owns [boundaries[k], boundaries[k+1]). Still contiguous and
  /// monotone, so shard_of stays invertible and the router/bus endpoint
  /// identity (home id == agent id, ascending per shard) is unchanged.
  std::vector<std::size_t> boundaries;

  /// Clamp `requested` into [1, max(1, num_homes)] — one pool task per
  /// home is the finest useful grain, and 0 means "unsharded".
  [[nodiscard]] static ShardPlan make(std::size_t num_homes,
                                      std::size_t requested);

  /// Cost-weighted variant: `weights[home]` is the home's relative step
  /// cost (e.g. its device count), and boundaries are cut so per-shard
  /// total weight is as even as contiguity allows — a pure, deterministic
  /// function of (weights, requested). Equal weights reproduce the
  /// uniform plan's boundaries exactly. Falls back to the uniform plan
  /// when the clamped shard count is 1.
  [[nodiscard]] static ShardPlan make_weighted(
      const std::vector<std::size_t>& weights, std::size_t requested);

  [[nodiscard]] bool sharded() const noexcept { return shards > 1; }
  [[nodiscard]] bool weighted() const noexcept { return !boundaries.empty(); }

  /// max/mean of per-shard total weight under this plan — the
  /// wall-time-imbalance predictor the weighted assignment minimizes.
  /// 1.0 for degenerate inputs. `weights.size()` must equal num_homes.
  [[nodiscard]] double weight_imbalance(
      const std::vector<std::size_t>& weights) const;

  /// Shard owning `home` (contiguous balanced assignment; agrees with
  /// util::shard_of and hence with the runtime engine).
  [[nodiscard]] std::size_t shard_of(std::size_t home) const;

  /// Home range [first, last) of `shard`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
      std::size_t shard) const;

  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;

  /// Cluster size that aligns the hierarchical topology's clusters with
  /// the shard boundaries (ceil(num_homes / shards)): every cluster then
  /// lives inside one shard, so hub traffic is the only cross-shard
  /// traffic the router has to batch.
  [[nodiscard]] std::size_t aligned_cluster_size() const;

  /// Human-readable summary, e.g. "10000 homes / 8 shards (1250 each)".
  [[nodiscard]] std::string describe() const;
};

}  // namespace pfdrl::sim
