// Shard plan for the bulk-synchronous engine (docs/scaling.md).
//
// A ShardPlan pins the home → shard assignment for a run: contiguous,
// balanced buckets computed from (num_homes, shards) alone, via the same
// util::shard arithmetic the runtime fan-out uses. Because the plan is a
// pure function of those two numbers, a resumed run reconstructs the
// identical assignment without persisting it — per-shard snapshot files
// only need to carry (shard_index, shard_count).
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace pfdrl::sim {

struct ShardPlan {
  std::size_t num_homes = 0;
  std::size_t shards = 1;

  /// Clamp `requested` into [1, max(1, num_homes)] — one pool task per
  /// home is the finest useful grain, and 0 means "unsharded".
  [[nodiscard]] static ShardPlan make(std::size_t num_homes,
                                      std::size_t requested);

  [[nodiscard]] bool sharded() const noexcept { return shards > 1; }

  /// Shard owning `home` (contiguous balanced assignment; agrees with
  /// util::shard_of and hence with the runtime engine).
  [[nodiscard]] std::size_t shard_of(std::size_t home) const;

  /// Home range [first, last) of `shard`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
      std::size_t shard) const;

  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;

  /// Cluster size that aligns the hierarchical topology's clusters with
  /// the shard boundaries (ceil(num_homes / shards)): every cluster then
  /// lives inside one shard, so hub traffic is the only cross-shard
  /// traffic the router has to batch.
  [[nodiscard]] std::size_t aligned_cluster_size() const;

  /// Human-readable summary, e.g. "10000 homes / 8 shards (1250 each)".
  [[nodiscard]] std::string describe() const;
};

}  // namespace pfdrl::sim
