#include "sim/experiment.hpp"

#include <algorithm>

namespace pfdrl::sim {

core::PipelineConfig paper_pipeline(core::EmsMethod method,
                                    std::uint64_t seed) {
  core::PipelineConfig cfg;
  cfg.method = method;
  cfg.forecast_method = forecast::Method::kLstm;
  cfg.window.window = 16;
  // epochs/lr/stride 0 = per-method tuned defaults (resolve_train_config).
  cfg.beta_hours = 12.0;
  cfg.gamma_hours = 12.0;
  cfg.alpha = 6;
  cfg.dqn.hidden = {100, 100, 100, 100, 100, 100, 100, 100};
  cfg.dqn.learning_rate = 1e-3;
  cfg.dqn.discount = 0.9;
  cfg.dqn.replay_capacity = 2000;
  cfg.dqn.target_replace_every = 100;
  // Exploration stretched over ~4 simulated days: the paper's Fig. 9
  // convergence plays out over tens of days, and the speed advantage of
  // sharing EMS plans only shows while agents are still learning. The
  // EMS loop takes one decision per meter interval (default 5 min), so
  // 1200 act steps ≈ 6000 simulated minutes.
  cfg.dqn.epsilon_decay_steps = 1200;
  cfg.learn_every_minutes = 45;
  cfg.seed = seed;
  return cfg;
}

core::PipelineConfig fast_pipeline(core::EmsMethod method,
                                   std::uint64_t seed) {
  core::PipelineConfig cfg = paper_pipeline(method, seed);
  cfg.forecast_method = forecast::Method::kBp;
  cfg.window.window = 8;
  cfg.forecast_train.epochs = 1;
  cfg.forecast_train.stride = 6;
  cfg.dqn.hidden = {32, 32, 32, 32};
  cfg.alpha = std::min<std::size_t>(cfg.alpha, 3);
  cfg.learn_every_minutes = 8;
  return cfg;
}

core::PipelineConfig bench_pipeline(core::EmsMethod method,
                                    std::uint64_t seed) {
  core::PipelineConfig cfg = paper_pipeline(method, seed);
  cfg.forecast_method = forecast::Method::kBp;
  cfg.dqn.hidden = {48, 48, 48, 48, 48, 48, 48, 48};
  return cfg;
}

std::vector<ConvergencePoint> run_convergence(
    const Scenario& scenario, const core::PipelineConfig& cfg,
    std::size_t forecast_train_days, std::size_t ems_days) {
  core::EmsPipeline pipeline(scenario.traces, cfg);

  const std::size_t day = data::kMinutesPerDay;
  const std::size_t total = scenario.minutes();
  const std::size_t fc_end = std::min(forecast_train_days * day, total);
  pipeline.train_forecasters(0, fc_end);

  // The last trace day is held out: every convergence point evaluates
  // the greedy policy on the same day, so the series shows pure learning
  // progress (the paper's Fig. 9 protocol), not day-to-day workload noise.
  const std::size_t eval_begin = total >= day ? total - day : 0;

  std::vector<ConvergencePoint> points;
  const auto homes = static_cast<double>(scenario.num_homes());
  for (std::size_t d = 0; d < ems_days; ++d) {
    const std::size_t begin = std::min(fc_end + d * day, eval_begin);
    const std::size_t end = std::min(begin + day, eval_begin);
    if (begin >= end) break;
    pipeline.train_ems(begin, end);

    const auto results = pipeline.evaluate(eval_begin, total);
    ConvergencePoint pt;
    pt.day = d + 1;
    double net_saved = 0.0;
    double gross_saved = 0.0;
    double standby = 0.0;
    double reward = 0.0;
    std::size_t violations = 0;
    std::size_t steps = 0;
    for (const auto& r : results) {
      net_saved += std::max(0.0, r.net_saved_kwh());
      gross_saved += r.saved_kwh;
      standby += r.standby_kwh;
      reward += r.total_reward;
      violations += r.comfort_violations;
      steps += r.steps;
    }
    pt.saved_kwh_per_client = net_saved / homes;
    pt.saved_fraction = standby > 0.0 ? net_saved / standby : 0.0;
    pt.gross_saved_fraction = standby > 0.0 ? gross_saved / standby : 0.0;
    pt.comfort_violations_per_client = static_cast<double>(violations) / homes;
    pt.mean_reward_per_step =
        steps > 0 ? reward / static_cast<double>(steps) : 0.0;
    points.push_back(pt);
  }
  return points;
}

}  // namespace pfdrl::sim
