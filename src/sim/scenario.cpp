#include "sim/scenario.hpp"

#include "util/thread_pool.hpp"

namespace pfdrl::sim {

std::size_t Scenario::num_devices() const noexcept {
  std::size_t n = 0;
  for (const auto& home : traces) n += home.devices.size();
  return n;
}

double Scenario::total_standby_kwh(std::size_t begin, std::size_t end) const {
  double total = 0.0;
  for (const auto& home : traces) {
    for (const auto& dev : home.devices) {
      total += dev.standby_energy_kwh(begin, end);
    }
  }
  return total;
}

Scenario Scenario::generate(const ScenarioConfig& cfg) {
  Scenario scenario;
  scenario.config = cfg;
  scenario.profiles = data::make_neighborhood(cfg.neighborhood);
  scenario.traces.resize(scenario.profiles.size());
  util::ThreadPool::global().parallel_for(
      0, scenario.profiles.size(), [&](std::size_t h) {
        scenario.traces[h] =
            data::generate_household_trace(scenario.profiles[h], cfg.trace);
      });
  return scenario;
}

ScenarioConfig tiny_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.neighborhood.num_households = 2;
  cfg.neighborhood.min_devices = 3;
  cfg.neighborhood.max_devices = 3;
  cfg.neighborhood.seed = seed;
  cfg.trace.days = 2;
  cfg.trace.seed = seed;
  return cfg;
}

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.neighborhood.num_households = 5;
  cfg.neighborhood.min_devices = 4;
  cfg.neighborhood.max_devices = 5;
  cfg.neighborhood.seed = seed;
  cfg.trace.days = 4;
  cfg.trace.seed = seed;
  return cfg;
}

ScenarioConfig medium_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.neighborhood.num_households = 10;
  cfg.neighborhood.min_devices = 4;
  cfg.neighborhood.max_devices = 7;
  cfg.neighborhood.seed = seed;
  cfg.trace.days = 8;
  cfg.trace.seed = seed;
  return cfg;
}

}  // namespace pfdrl::sim
