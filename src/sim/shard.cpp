#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/shard.hpp"

namespace pfdrl::sim {

ShardPlan ShardPlan::make(std::size_t num_homes, std::size_t requested) {
  ShardPlan plan;
  plan.num_homes = num_homes;
  plan.shards = std::clamp<std::size_t>(requested, 1,
                                        std::max<std::size_t>(1, num_homes));
  return plan;
}

std::size_t ShardPlan::shard_of(std::size_t home) const {
  if (home >= num_homes) {
    throw std::out_of_range("ShardPlan::shard_of: home out of range");
  }
  return util::shard_of(home, num_homes, shards);
}

std::pair<std::size_t, std::size_t> ShardPlan::shard_range(
    std::size_t shard) const {
  if (shard >= shards) {
    throw std::out_of_range("ShardPlan::shard_range: shard out of range");
  }
  return {util::shard_begin(shard, num_homes, shards),
          util::shard_begin(shard + 1, num_homes, shards)};
}

std::size_t ShardPlan::shard_size(std::size_t shard) const {
  const auto [first, last] = shard_range(shard);
  return last - first;
}

std::size_t ShardPlan::aligned_cluster_size() const {
  if (num_homes == 0) return 1;
  return (num_homes + shards - 1) / shards;
}

std::string ShardPlan::describe() const {
  std::string s = std::to_string(num_homes) + " homes / " +
                  std::to_string(shards) + " shard" +
                  (shards == 1 ? "" : "s");
  if (shards > 1) {
    s += " (" + std::to_string(aligned_cluster_size()) + " max each)";
  }
  return s;
}

}  // namespace pfdrl::sim
