#include "sim/shard.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "util/shard.hpp"

namespace pfdrl::sim {

ShardPlan ShardPlan::make(std::size_t num_homes, std::size_t requested) {
  ShardPlan plan;
  plan.num_homes = num_homes;
  plan.shards = std::clamp<std::size_t>(requested, 1,
                                        std::max<std::size_t>(1, num_homes));
  return plan;
}

ShardPlan ShardPlan::make_weighted(const std::vector<std::size_t>& weights,
                                   std::size_t requested) {
  ShardPlan plan = make(weights.size(), requested);
  if (plan.shards <= 1) return plan;
  std::vector<std::uint64_t> prefix(plan.num_homes + 1, 0);
  for (std::size_t i = 0; i < plan.num_homes; ++i) {
    prefix[i + 1] = prefix[i] + weights[i];
  }
  const std::uint64_t total = prefix.back();
  if (total == 0) return plan;  // all-zero weights: keep the uniform plan
  const auto shards = static_cast<std::uint64_t>(plan.shards);
  plan.boundaries.assign(plan.shards + 1, 0);
  plan.boundaries[plan.shards] = plan.num_homes;
  for (std::size_t k = 1; k < plan.shards; ++k) {
    // Largest cut with prefix[cut] * S <= total * k — floor semantics in
    // weight space, which reduces to the uniform k*N/S boundary under
    // equal weights. Clamped so every shard keeps at least one home.
    const std::uint64_t scaled = total * static_cast<std::uint64_t>(k);
    const std::size_t cut = static_cast<std::size_t>(
        std::partition_point(prefix.begin(), prefix.end(),
                             [&](std::uint64_t p) { return p * shards <= scaled; }) -
        prefix.begin() - 1);
    plan.boundaries[k] =
        std::clamp(cut, plan.boundaries[k - 1] + 1,
                   plan.num_homes - (plan.shards - k));
  }
  return plan;
}

double ShardPlan::weight_imbalance(
    const std::vector<std::size_t>& weights) const {
  if (weights.size() != num_homes) {
    throw std::invalid_argument(
        "ShardPlan::weight_imbalance: weight/home-count mismatch");
  }
  if (shards <= 1 || num_homes == 0) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t max_shard = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const auto [first, last] = shard_range(s);
    std::uint64_t sum = 0;
    for (std::size_t i = first; i < last; ++i) sum += weights[i];
    total += sum;
    max_shard = std::max(max_shard, sum);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards);
  return static_cast<double>(max_shard) / mean;
}

std::size_t ShardPlan::shard_of(std::size_t home) const {
  if (home >= num_homes) {
    throw std::out_of_range("ShardPlan::shard_of: home out of range");
  }
  if (weighted()) {
    // Boundaries are strictly increasing, so the owning shard is the one
    // whose right edge is the first boundary past `home`.
    return static_cast<std::size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), home) -
        boundaries.begin() - 1);
  }
  return util::shard_of(home, num_homes, shards);
}

std::pair<std::size_t, std::size_t> ShardPlan::shard_range(
    std::size_t shard) const {
  if (shard >= shards) {
    throw std::out_of_range("ShardPlan::shard_range: shard out of range");
  }
  if (weighted()) return {boundaries[shard], boundaries[shard + 1]};
  return {util::shard_begin(shard, num_homes, shards),
          util::shard_begin(shard + 1, num_homes, shards)};
}

std::size_t ShardPlan::shard_size(std::size_t shard) const {
  const auto [first, last] = shard_range(shard);
  return last - first;
}

std::size_t ShardPlan::aligned_cluster_size() const {
  if (num_homes == 0) return 1;
  return (num_homes + shards - 1) / shards;
}

std::string ShardPlan::describe() const {
  std::string s = std::to_string(num_homes) + " homes / " +
                  std::to_string(shards) + " shard" +
                  (shards == 1 ? "" : "s");
  if (weighted()) {
    std::size_t max_size = 0;
    for (std::size_t k = 0; k < shards; ++k) {
      max_size = std::max(max_size, shard_size(k));
    }
    s += " (cost-weighted, " + std::to_string(max_size) + " max each)";
  } else if (shards > 1) {
    s += " (" + std::to_string(aligned_cluster_size()) + " max each)";
  }
  return s;
}

}  // namespace pfdrl::sim
