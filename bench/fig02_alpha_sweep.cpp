// Figure 2 — saved standby energy vs number of shared (base) layers α.
// Paper: best at α = 6 (6 base + 2 personalization layers).
#include "common.hpp"

#include "core/pipeline.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 2: saved standby energy vs shared layers alpha",
      "alpha = 6 performs best (6 base layers, 2 personalization layers)");

  const auto scenario = bench::bench_scenario(/*days=*/6);
  const std::size_t day = data::kMinutesPerDay;

  util::TextTable table({"alpha", "net saved frac", "gross saved frac",
                         "reward/step", "DRL MiB broadcast"});
  for (std::size_t alpha = 1; alpha <= 8; ++alpha) {
    auto cfg = sim::bench_pipeline(core::EmsMethod::kPfdrl);
    cfg.alpha = alpha;
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);
    pipeline.train_ems(2 * day, 5 * day);

    const auto results = pipeline.evaluate(5 * day, 6 * day);
    double net = 0.0, gross = 0.0, standby = 0.0, reward = 0.0;
    std::size_t steps = 0;
    for (const auto& r : results) {
      net += std::max(0.0, r.net_saved_kwh());
      gross += r.saved_kwh;
      standby += r.standby_kwh;
      reward += r.total_reward;
      steps += r.steps;
    }
    const auto comm = pipeline.drl_comm_stats();
    table.add_row({std::to_string(alpha),
                   util::fmt_double(net / standby, 3),
                   util::fmt_double(gross / standby, 3),
                   util::fmt_double(reward / static_cast<double>(steps), 2),
                   util::fmt_double(static_cast<double>(comm.bytes_on_wire) /
                                        (1024.0 * 1024.0),
                                    2)});
  }
  table.print();
  std::printf(
      "\nNote: at our scale savings saturate for every alpha; the sweep\n"
      "shows the communication cost rising with alpha while savings stay\n"
      "flat, which is why alpha=6 (not 8) is the efficient choice.\n");
  return 0;
}
