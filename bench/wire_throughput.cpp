// Wire-codec throughput + compression sweep (docs/wire.md).
//
// Measures the net::WireCodec frame codec on the repo's real forecaster
// parameter shapes (LSTM / GRU / BP-MLP, built by forecast::make_forecaster
// so the vectors have the production sizes and init distributions) under a
// synthetic converged-training evolution: round t perturbs every parameter
// by a geometrically decaying step, so early rounds look like fresh
// training (large deltas, little to compress) and late rounds look like a
// converged federation (tiny deltas, long XOR leading-zero runs). Reports
// the per-round compression trajectory, the converged-round ratio (mean of
// the last three rounds — the steady state a long federated run spends
// almost all its wall clock in), and encode/decode throughput in GB/s over
// the raw fp64 payload.
//
// Determinism guard: the full sweep runs twice and the FNV-1a hash over
// every coded frame byte must match bitwise — the codec's twin-run
// contract.
//
// Writes a JSON summary (default BENCH_wire.json in the CWD; the committed
// baseline at the repo root is produced by the default flags).
// Flags: --rounds R, --reps N, --out PATH.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common.hpp"
#include "data/dataset.hpp"
#include "forecast/forecaster.hpp"
#include "net/codec.hpp"
#include "net/topology.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace pfdrl;

struct ShapeResult {
  std::string name;
  std::size_t params = 0;
  std::uint64_t keyframe_bytes = 0;
  std::vector<double> ratios_by_round;  ///< raw/coded, per round
  double overall_ratio = 0.0;
  double converged_ratio = 0.0;  ///< mean of the last 3 rounds
  double encode_gbps = 0.0;
  double decode_gbps = 0.0;
  std::uint64_t frame_hash = 0;
};

/// Per-round update step: 1e-2 decaying one decade per round — round 0 is
/// the keyframe, the tail rounds sit at the ~1e-10-relative deltas a
/// converged double-precision federation produces.
double step_scale(std::size_t round) {
  return 1e-2 * std::pow(10.0, -static_cast<double>(round));
}

/// Signed unit noise from the deterministic mix64 stream (no libc rand —
/// twin runs must agree bitwise).
double unit_noise(std::uint64_t key) {
  const std::uint64_t g = net::detail::mix64(key);
  return (static_cast<double>(g >> 11) * 0x1.0p-53) * 2.0 - 1.0;
}

std::uint64_t fnv1a(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (std::uint8_t b : bytes) h = (h ^ b) * 1099511628211ULL;
  return h;
}

/// One shape sweep: evolve the parameter vector `rounds` times, encode the
/// delta frame each round (`reps` repetitions for stable timing; every rep
/// encodes the identical frame, so only the first is hashed/billed),
/// decode-verify each frame, and accumulate stats.
ShapeResult run_shape(const std::string& name, forecast::Method method,
                      std::size_t rounds, std::size_t reps,
                      std::uint64_t seed) {
  const data::WindowConfig window;  // production window: 16 + calendar
  const auto model = forecast::make_forecaster(method, window, seed);
  const auto init = model->parameters();
  std::vector<double> params(init.begin(), init.end());

  ShapeResult r;
  r.name = name;
  r.params = params.size();
  r.frame_hash = 1469598103934665603ULL;

  std::vector<double> prev;  // codec delta state (empty = keyframe)
  std::vector<std::uint8_t> frame;
  std::vector<double> decoded;
  const std::uint64_t raw = params.size() * sizeof(double);
  std::uint64_t coded_total = 0;
  double encode_s = 0.0;
  double decode_s = 0.0;

  for (std::size_t t = 0; t < rounds; ++t) {
    if (t > 0) {
      const double step = step_scale(t);
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i] += step * unit_noise(seed ^ (t * 0x9E3779B97F4A7C15ULL) ^ i);
      }
    }
    util::Stopwatch encode_watch;
    std::size_t coded = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      coded = net::WireCodec::encode_frame(params, prev, frame);
    }
    encode_s += encode_watch.elapsed_seconds();

    util::Stopwatch decode_watch;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      net::WireCodec::decode_frame(std::span(frame.data(), coded), prev,
                                   params.size(), decoded);
    }
    decode_s += decode_watch.elapsed_seconds();
    if (std::memcmp(decoded.data(), params.data(), raw) != 0) {
      std::fprintf(stderr, "FATAL: %s round %zu roundtrip mismatch\n",
                   name.c_str(), t);
      std::exit(1);
    }

    r.frame_hash = fnv1a(r.frame_hash, std::span(frame.data(), coded));
    if (t == 0) r.keyframe_bytes = coded;
    coded_total += coded;
    r.ratios_by_round.push_back(static_cast<double>(raw) /
                                static_cast<double>(coded));
    prev = params;
  }

  r.overall_ratio = static_cast<double>(raw * rounds) /
                    static_cast<double>(coded_total);
  const std::size_t tail = std::min<std::size_t>(3, rounds);
  double tail_sum = 0.0;
  for (std::size_t i = rounds - tail; i < rounds; ++i) {
    tail_sum += r.ratios_by_round[i];
  }
  r.converged_ratio = tail_sum / static_cast<double>(tail);
  const double bytes_moved =
      static_cast<double>(raw) * static_cast<double>(rounds * reps);
  r.encode_gbps = encode_s > 0.0 ? bytes_moved / encode_s / 1e9 : 0.0;
  r.decode_gbps = decode_s > 0.0 ? bytes_moved / decode_s / 1e9 : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 12;
  std::size_t reps = 400;
  std::string out_path = "BENCH_wire.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--rounds R] [--reps N] [--out P]\n",
                   argv[0]);
      return 2;
    }
  }
  if (rounds < 2 || reps < 1) {
    std::fprintf(stderr, "wire_throughput: need --rounds >= 2, --reps >= 1\n");
    return 2;
  }

  bench::print_figure_header(
      "Wire-codec compression + throughput (docs/wire.md)",
      "federated rounds resend nearly identical fp64 vectors — XOR delta "
      "coding shrinks converged-round traffic well past 2x, losslessly");

  const struct {
    const char* name;
    forecast::Method method;
  } kShapes[] = {
      {"lstm", forecast::Method::kLstm},
      {"gru", forecast::Method::kGru},
      {"mlp", forecast::Method::kBp},
  };

  std::vector<ShapeResult> results;
  bool deterministic = true;
  for (const auto& shape : kShapes) {
    ShapeResult first = run_shape(shape.name, shape.method, rounds, reps, 42);
    ShapeResult twin = run_shape(shape.name, shape.method, rounds, reps, 42);
    deterministic = deterministic && first.frame_hash == twin.frame_hash;
    results.push_back(std::move(first));
  }

  util::TextTable table({"shape", "params", "keyframe B", "overall x",
                         "converged x", "encode GB/s", "decode GB/s",
                         "deterministic"});
  for (const auto& r : results) {
    table.add_row({r.name, std::to_string(r.params),
                   std::to_string(r.keyframe_bytes),
                   util::fmt_double(r.overall_ratio, 2),
                   util::fmt_double(r.converged_ratio, 2),
                   util::fmt_double(r.encode_gbps, 2),
                   util::fmt_double(r.decode_gbps, 2),
                   deterministic ? "yes" : "NO"});
  }
  table.print();

  if (!deterministic) {
    std::fprintf(stderr, "FATAL: twin identically seeded sweeps diverged\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"wire_throughput\",\n"
               "  \"rounds\": %zu,\n"
               "  \"reps\": %zu,\n"
               "  \"deterministic\": %s,\n"
               "  \"shapes\": [\n",
               rounds, reps, deterministic ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& r = results[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"params\": %zu, "
                 "\"keyframe_bytes\": %" PRIu64 ", "
                 "\"overall_ratio\": %.3f, \"converged_ratio\": %.3f, "
                 "\"encode_gbps\": %.3f, \"decode_gbps\": %.3f, "
                 "\"frame_hash\": \"%016" PRIx64 "\", "
                 "\"ratios_by_round\": [",
                 r.name.c_str(), r.params, r.keyframe_bytes, r.overall_ratio,
                 r.converged_ratio, r.encode_gbps, r.decode_gbps,
                 r.frame_hash);
    for (std::size_t t = 0; t < r.ratios_by_round.size(); ++t) {
      std::fprintf(f, "%.3f%s", r.ratios_by_round[t],
                   t + 1 < r.ratios_by_round.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nbaseline written to %s\n", out_path.c_str());

  bench::dump_metrics("wire_throughput");
  return 0;
}
