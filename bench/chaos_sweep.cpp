// Chaos sweep — PFDRL robustness under escalating fault profiles.
//
// Runs the full PFDRL pipeline through a ladder of chaos profiles (clean
// link, lossy, lossy+jittery, full chaos with crashes, stragglers and a
// partition window) and reports quorum fill, degradation counters and
// the savings the EMS still delivers. The reproduction claim under test:
// deadline/quorum rounds degrade *gracefully* — savings erode, they do
// not collapse, and no profile deadlocks a round.
#include "common.hpp"

#include "core/pipeline.hpp"
#include "net/fault.hpp"

namespace {

using namespace pfdrl;

struct ChaosProfile {
  const char* name;
  net::FaultPlan fault;
  fl::ExchangePolicy robustness;
};

std::vector<ChaosProfile> profiles() {
  std::vector<ChaosProfile> out;

  out.push_back({.name = "clean", .fault = {}, .robustness = {}});

  ChaosProfile lossy;
  lossy.name = "lossy20";
  lossy.fault.link.drop_probability = 0.2;
  out.push_back(lossy);

  ChaosProfile jittery;
  jittery.name = "lossy+jitter";
  jittery.fault.link.drop_probability = 0.2;
  jittery.fault.delay_s = 0.002;
  jittery.fault.jitter_s = 0.004;
  jittery.robustness.round_deadline_s = 0.008;
  out.push_back(jittery);

  ChaosProfile quorum;
  quorum.name = "quorum-gated";
  quorum.fault = jittery.fault;
  quorum.robustness = jittery.robustness;
  quorum.robustness.quorum_fraction = 0.6;
  out.push_back(quorum);

  ChaosProfile chaos;
  chaos.name = "full-chaos";
  chaos.fault = jittery.fault;
  chaos.fault.duplicate_probability = 0.05;
  chaos.fault.reorder = true;
  chaos.fault.partitions.push_back(
      {.from_round = 2, .until_round = 4, .group = {0, 1}});
  chaos.robustness = quorum.robustness;
  chaos.robustness.failures.crashes.push_back(
      {.agent = 2, .from_round = 0, .until_round = 2});
  chaos.robustness.failures.crashes.push_back(
      {.agent = 4, .from_round = 5, .until_round = 7});
  chaos.robustness.failures.stragglers.push_back(
      {.agent = 3, .compute_delay_s = 0.02});
  out.push_back(chaos);

  return out;
}

}  // namespace

int main() {
  bench::print_figure_header(
      "Chaos sweep: PFDRL savings under escalating network/node faults",
      "deadline+quorum rounds degrade gracefully; no profile deadlocks");

  const auto scenario = bench::bench_scenario(/*days=*/5);
  const std::size_t day = data::kMinutesPerDay;

  util::TextTable table({"profile", "net saved frac", "quorum met", "missed",
                         "stale rnds", "late msgs", "drops", "crashes"});
  for (const auto& profile : profiles()) {
    auto cfg = sim::bench_pipeline(core::EmsMethod::kPfdrl);
    cfg.gamma_hours = 3.0;  // enough DRL rounds for every window to fire
    cfg.fault = profile.fault;
    cfg.robustness = profile.robustness;
    obs::MetricsRegistry reg;
    cfg.metrics = &reg;

    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);
    pipeline.train_ems(2 * day, 4 * day);
    const auto results = pipeline.evaluate(4 * day, 5 * day);
    double net = 0.0, standby = 0.0;
    for (const auto& r : results) {
      net += std::max(0.0, r.net_saved_kwh());
      standby += r.standby_kwh;
    }

    table.add_row(
        {profile.name, util::fmt_double(standby > 0 ? net / standby : 0.0, 3),
         std::to_string(reg.counter("exchange.quorum_met").value()),
         std::to_string(reg.counter("exchange.quorum_missed").value()),
         std::to_string(reg.counter("exchange.stale_rounds").value()),
         std::to_string(reg.counter("exchange.late_msgs").value()),
         std::to_string(reg.counter("fault.drops").value()),
         std::to_string(reg.counter("fault.crashes").value())});

    // Fold per-profile counters into the global registry under a
    // profile prefix so the metrics sidecar captures the whole ladder.
    auto& global = obs::MetricsRegistry::global();
    const std::string prefix = std::string("chaos.") + profile.name;
    global.counter(prefix + ".quorum_met")
        .add(reg.counter("exchange.quorum_met").value());
    global.counter(prefix + ".quorum_missed")
        .add(reg.counter("exchange.quorum_missed").value());
    global.counter(prefix + ".fault_drops")
        .add(reg.counter("fault.drops").value());
  }
  table.print();
  bench::dump_metrics("chaos_sweep");
  return 0;
}
