// Figure 12 — personalized vs not-personalized EMS performance, mean and
// error bar across residences.
// Paper: the personalized model performs better for most residences.
#include "common.hpp"

#include "core/pipeline.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 12: personalized (alpha=6) vs not personalized (full share)",
      "personalization improves the mean and most residences");

  const auto scenario = bench::bench_scenario(/*days=*/6, /*homes=*/6);
  const std::size_t day = data::kMinutesPerDay;

  struct Variant {
    const char* label;
    core::EmsMethod method;
  };
  const Variant variants[] = {
      {"personalized (PFDRL, alpha=6)", core::EmsMethod::kPfdrl},
      {"not personalized (FRL, all shared)", core::EmsMethod::kFrl},
  };

  util::TextTable table({"variant", "mean net saved frac", "std err",
                         "mean reward/step", "violations/client"});
  std::vector<std::vector<double>> per_home_fracs;
  for (const auto& variant : variants) {
    auto cfg = sim::bench_pipeline(variant.method);
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);
    pipeline.train_ems(2 * day, 5 * day);
    const auto results = pipeline.evaluate(5 * day, 6 * day);

    util::RunningStats frac_stats;
    util::RunningStats reward_stats;
    double violations = 0.0;
    std::vector<double> fracs;
    for (const auto& r : results) {
      frac_stats.add(r.net_saved_fraction());
      fracs.push_back(r.net_saved_fraction());
      reward_stats.add(r.total_reward / static_cast<double>(r.steps));
      violations += static_cast<double>(r.comfort_violations);
    }
    per_home_fracs.push_back(std::move(fracs));
    table.add_row({variant.label, util::fmt_double(frac_stats.mean(), 3),
                   util::fmt_double(frac_stats.stderror(), 3),
                   util::fmt_double(reward_stats.mean(), 2),
                   util::fmt_double(
                       violations / static_cast<double>(results.size()), 1)});
  }
  table.print();

  std::size_t wins = 0;
  for (std::size_t h = 0; h < per_home_fracs[0].size(); ++h) {
    if (per_home_fracs[0][h] >= per_home_fracs[1][h]) ++wins;
  }
  std::printf("\npersonalized >= not-personalized for %zu of %zu residences\n",
              wins, per_home_fracs[0].size());
  return 0;
}
