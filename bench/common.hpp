// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary regenerates one table/figure of the paper's evaluation
// section (see DESIGN.md §4 for the index) and prints the series as an
// aligned text table. Scales are chosen for single-core laptop runtimes;
// absolute numbers therefore differ from the paper's testbed, but the
// *shape* (ordering, optima, crossovers) is the reproduction target.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::bench {

/// Standard bench neighbourhood: 5 homes, seeded; `days` trace days.
inline sim::Scenario bench_scenario(std::size_t days,
                                    std::uint32_t homes = 5,
                                    std::uint64_t seed = 42) {
  sim::ScenarioConfig cfg;
  cfg.neighborhood.num_households = homes;
  cfg.neighborhood.min_devices = 4;
  cfg.neighborhood.max_devices = 5;
  cfg.neighborhood.seed = seed;
  cfg.trace.days = days;
  cfg.trace.seed = seed;
  return sim::Scenario::generate(cfg);
}

inline void print_figure_header(const std::string& figure,
                                const std::string& paper_claim) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

/// Fixed-order FNV-1a over raw parameter bytes — the bitwise fingerprint
/// the determinism asserts compare across modes and pool worker counts.
inline std::uint64_t fnv1a_params(std::span<const double> params) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(params.data());
  for (std::size_t i = 0; i < params.size() * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

/// Metrics sidecar hook: when PFDRL_METRICS_DIR is set, fold the runtime
/// pool counters into the global registry and write everything the run
/// recorded to `<dir>/<bench_name>.metrics.json`. Call at the end of
/// main() — a no-op without the env var, so benches stay silent by
/// default.
inline void dump_metrics(const std::string& bench_name) {
  const char* dir = std::getenv("PFDRL_METRICS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  auto& reg = obs::MetricsRegistry::global();
  obs::record_thread_pool_stats(reg, "pool",
                                util::ThreadPool::global().stats());
  obs::record_nn_workspace_stats(reg);
  obs::record_nn_kernel_stats(reg);
  const std::string path =
      std::string(dir) + "/" + bench_name + ".metrics.json";
  reg.write_json(path);
  std::printf("\nmetrics written to %s\n", path.c_str());
}

}  // namespace pfdrl::bench
