// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary regenerates one table/figure of the paper's evaluation
// section (see DESIGN.md §4 for the index) and prints the series as an
// aligned text table. Scales are chosen for single-core laptop runtimes;
// absolute numbers therefore differ from the paper's testbed, but the
// *shape* (ordering, optima, crossovers) is the reproduction target.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

namespace pfdrl::bench {

/// Standard bench neighbourhood: 5 homes, seeded; `days` trace days.
inline sim::Scenario bench_scenario(std::size_t days,
                                    std::uint32_t homes = 5,
                                    std::uint64_t seed = 42) {
  sim::ScenarioConfig cfg;
  cfg.neighborhood.num_households = homes;
  cfg.neighborhood.min_devices = 4;
  cfg.neighborhood.max_devices = 5;
  cfg.neighborhood.seed = seed;
  cfg.trace.days = days;
  cfg.trace.seed = seed;
  return sim::Scenario::generate(cfg);
}

inline void print_figure_header(const std::string& figure,
                                const std::string& paper_claim) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

}  // namespace pfdrl::bench
