// City-scale federation engine sweep — the perf baseline for the sharded
// engine and its two round-synchronization disciplines (docs/scaling.md).
//
// The full EMS pipeline cannot run 100k homes on a laptop (the DQN +
// forecaster state alone would swamp RAM), but the *engine* — sharded
// local steps, topology broadcast, cross-shard batch routing, parallel
// drain/aggregate — can, and that is what this bench measures. Each
// point spins up N synthetic agents with P-double parameter slices and
// runs R federation rounds twice over:
//
//  * mode "bsp": the bulk-synchronous reference — util::sharded_for
//    local step, then one fl::ParamExchange barrier round per round;
//  * mode "pipeline": the dependency-driven engine — fl::StagedExchange
//    double buffers driven by core::RoundPipeline readiness counters,
//    per-shard compute overlapping neighbor exchange (stall/overlap
//    seconds are reported from core::PipelineStats).
//
// Homes are cost-weighted (device count ramps 1..4 across the city) and
// the shard plan is sim::ShardPlan::make_weighted by default, so
// per-shard cost is balanced; --uniform-shards switches back to the
// equal-count plan to measure the imbalance the weighting removes.
//
// The pool-worker sweep re-executes this binary once per requested
// worker count with PFDRL_POOL_WORKERS set (the pool is sized once per
// process), collecting each child's point lines into one JSON. Twin
// identically seeded runs per point must agree bitwise, and the final
// parameter hash must be identical across every (mode, pool_workers)
// combination per agent count — the engine determinism contract.
//
// Writes a JSON summary (default BENCH_scale.json in the CWD; the
// committed baseline at the repo root is produced by the default flags).
// Flags: --agents CSV, --rounds R, --params P, --shards S,
// --pool-workers CSV, --topology NAME, --fanout N, --uniform-shards,
// --no-wire-codec, --out PATH (and --emit PATH, the internal child
// mode).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/sharded_runner.hpp"
#include "fl/exchange.hpp"
#include "net/bus.hpp"
#include "net/codec.hpp"
#include "net/shard_router.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "util/shard.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pfdrl;

struct SweepConfig {
  std::size_t params = 64;
  std::size_t rounds = 6;
  std::size_t shards = 32;  // fixed (not pool-sized) so the topology —
                            // and hence the hash — is worker-invariant
  net::TopologyKind topology = net::TopologyKind::kHierarchical;
  std::size_t fanout = 4;
  std::uint64_t seed = 42;
  bool weighted_shards = true;
  /// Lossless delta/XOR wire codec on the engine bus (docs/wire.md).
  bool wire_codec = true;
};

struct PointResult {
  std::size_t agents = 0;
  std::size_t shards = 0;
  core::SyncMode mode = core::SyncMode::kBsp;
  double seconds = 0.0;
  double agent_rounds_per_sec = 0.0;
  std::uint64_t links_per_round = 0;
  /// max/mean of measured per-shard local-step seconds.
  double imbalance = 1.0;
  /// max/mean of per-shard device weight under the plan (deterministic).
  double cost_imbalance = 1.0;
  core::PipelineStats pipeline;  // zeroed for bsp points
  net::ShardRouterStats router;
  net::CodecStats codec;
  std::uint64_t logical_bytes = 0;  ///< bus pre-codec bytes
  std::uint64_t wire_bytes = 0;     ///< bus post-codec bytes
  std::uint64_t hash = 0;
  bool deterministic = false;
};

/// Synthetic per-home device counts: a deterministic 1..4 ramp across
/// the city — the heterogeneity pattern that skews an equal-count shard
/// plan hardest (all heavy homes land in the top shards).
std::vector<std::size_t> home_weights(std::size_t agents) {
  std::vector<std::size_t> weights(agents);
  for (std::size_t a = 0; a < agents; ++a) weights[a] = 1 + (3 * a) / agents;
  return weights;
}

/// Everything one engine run needs, bundled so the bsp and pipeline
/// paths construct byte-identical inputs.
struct EngineSetup {
  sim::ShardPlan plan;
  std::vector<std::size_t> weights;
  net::MessageBus bus;
  std::unique_ptr<net::ShardRouter> router;  // router owns mutexes: no move
  net::WireCodec codec;
  std::vector<double> params;
  std::vector<fl::ExchangeItem> items;

  EngineSetup(std::size_t agents, const SweepConfig& cfg,
              sim::ShardPlan plan_in, std::vector<std::size_t> weights_in)
      : plan(std::move(plan_in)),
        weights(std::move(weights_in)),
        bus(net::Topology(cfg.topology, agents,
                          net::TopologyOptions{
                              .cluster_size = plan.aligned_cluster_size(),
                              .fanout = cfg.fanout,
                              .gossip_seed = cfg.seed}),
            {}),
        router(plan.weighted()
                   ? std::make_unique<net::ShardRouter>(agents, plan.boundaries)
                   : std::make_unique<net::ShardRouter>(agents, plan.shards)),
        params(agents * cfg.params),
        items(agents) {
    if (plan.sharded()) bus.set_shard_router(router.get());
    if (cfg.wire_codec) bus.set_codec(&codec);
    // Flat N x P parameter arena; agent a owns [a*P, (a+1)*P).
    const std::size_t P = cfg.params;
    for (std::size_t a = 0; a < agents; ++a) {
      for (std::size_t i = 0; i < P; ++i) {
        params[a * P + i] =
            static_cast<double>(net::detail::mix64(cfg.seed ^ (a * P + i)) >>
                                40) *
            1e-6;
      }
    }
    for (std::size_t a = 0; a < agents; ++a) {
      const std::span<double> slice(params.data() + a * P, P);
      items[a] = {.agent = static_cast<net::AgentId>(a),
                  .device_type = 0,
                  .send = slice,
                  .in_place = slice};
    }
  }

  /// Local step for agent `a` at round `r`: a pure per-agent function of
  /// (seed, round, agent), repeated once per device the home owns so
  /// step cost is proportional to the home's weight. Schedule-independent
  /// by construction, like the pipeline's forked per-job RNGs.
  void local_step(const SweepConfig& cfg, std::size_t a, std::size_t r) {
    const std::size_t P = cfg.params;
    for (std::size_t dev = 0; dev < weights[a]; ++dev) {
      for (std::size_t i = 0; i < P; ++i) {
        const std::uint64_t g =
            net::detail::mix64(cfg.seed ^ (r * 1315423911ULL) ^
                               (dev * 2654435761ULL) ^ (a * P + i));
        params[a * P + i] =
            params[a * P + i] * 0.999 + static_cast<double>(g >> 40) * 1e-9;
      }
    }
  }

  void fill_common(const SweepConfig& cfg, double seconds, PointResult* out) {
    out->agents = plan.num_homes;
    out->shards = plan.shards;
    out->seconds = seconds;
    out->agent_rounds_per_sec =
        seconds > 0.0
            ? static_cast<double>(plan.num_homes * cfg.rounds) / seconds
            : 0.0;
    std::uint64_t links = 0;
    for (std::size_t a = 0; a < plan.num_homes; ++a) {
      links += bus.topology().broadcast_links(static_cast<net::AgentId>(a));
    }
    out->links_per_round = links;
    out->cost_imbalance = plan.weight_imbalance(weights);
    out->router = router->stats();
    out->codec = codec.stats();
    out->logical_bytes = bus.stats().logical_bytes;
    out->wire_bytes = bus.stats().bytes_on_wire;
  }
};

/// Bulk-synchronous engine: sharded_for local step, then one
/// ParamExchange barrier round — the reference the pipeline must match
/// bitwise.
std::uint64_t run_bsp(std::size_t agents, const SweepConfig& cfg,
                      const sim::ShardPlan& plan,
                      const std::vector<std::size_t>& weights,
                      PointResult* out) {
  EngineSetup setup(agents, cfg, plan, weights);

  fl::ParamExchange::Options opts;
  opts.kind = net::MessageKind::kForecastParams;
  opts.min_group = 2;
  opts.parallel = setup.plan.sharded();
  fl::ParamExchange exchange(setup.bus, opts);

  util::Stopwatch watch;
  double imbalance_sum = 0.0;
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    const util::ShardTiming timing = util::sharded_for(
        util::ThreadPool::global(), agents, setup.plan.shards,
        [&](std::size_t a) { return setup.plan.shard_of(a); },
        [&](std::size_t a) { setup.local_step(cfg, a, r); });
    imbalance_sum += timing.max_over_mean();
    exchange.round(setup.items, r, [](std::size_t, std::span<const double>) {});
  }
  const double seconds = watch.elapsed_seconds();

  if (out != nullptr) {
    setup.fill_common(cfg, seconds, out);
    out->mode = core::SyncMode::kBsp;
    out->imbalance =
        cfg.rounds > 0 ? imbalance_sum / static_cast<double>(cfg.rounds) : 1.0;
  }
  return bench::fnv1a_params(setup.params);
}

/// Pipelined engine: the same rounds driven by StagedExchange double
/// buffers under RoundPipeline readiness counters — no per-phase
/// barriers, shard compute overlapping neighbor exchange.
std::uint64_t run_pipeline(std::size_t agents, const SweepConfig& cfg,
                           const sim::ShardPlan& plan,
                           const std::vector<std::size_t>& weights,
                           PointResult* out) {
  EngineSetup setup(agents, cfg, plan, weights);

  fl::ParamExchange::Options opts;
  opts.kind = net::MessageKind::kForecastParams;
  opts.min_group = 2;
  fl::StagedExchange staged(setup.bus, opts, setup.items);
  if (staged.num_shards() != setup.plan.shards) {
    std::fprintf(stderr, "FATAL: staged exchange shard count mismatch\n");
    std::exit(1);
  }

  core::RoundPipeline pipe(core::shard_broadcast_graph(
      setup.bus.topology(),
      [&](net::AgentId a) { return setup.router->shard_of(a); },
      setup.plan.shards));

  // Per-shard compute seconds: compute(s, ·) is serialized per shard by
  // the scheduler, so each slot has a single writer.
  std::vector<double> shard_seconds(setup.plan.shards, 0.0);
  core::RoundPipeline::Ops ops;
  ops.compute = [&](std::size_t s, std::uint64_t r) {
    util::Stopwatch w;
    const auto [first, last] = setup.plan.shard_range(s);
    for (std::size_t a = first; a < last; ++a) {
      setup.local_step(cfg, a, static_cast<std::size_t>(r));
    }
    shard_seconds[s] += w.elapsed_seconds();
  };
  ops.publish = [&](std::size_t s, std::uint64_t r) {
    staged.publish_shard(s, r);
  };
  ops.apply = [&](std::size_t s, std::uint64_t r) {
    staged.apply_shard(s, r, [](std::size_t, std::span<const double>) {});
  };

  util::Stopwatch watch;
  pipe.run(util::ThreadPool::global(), 0, cfg.rounds, ops);
  const double seconds = watch.elapsed_seconds();

  if (out != nullptr) {
    setup.fill_common(cfg, seconds, out);
    out->mode = core::SyncMode::kPipeline;
    out->pipeline = pipe.stats();
    double max_s = 0.0;
    double sum_s = 0.0;
    for (const double s : shard_seconds) {
      max_s = std::max(max_s, s);
      sum_s += s;
    }
    const double mean =
        sum_s > 0.0 ? sum_s / static_cast<double>(shard_seconds.size()) : 0.0;
    out->imbalance = mean > 0.0 ? max_s / mean : 1.0;
  }
  return bench::fnv1a_params(setup.params);
}

PointResult run_point(std::size_t agents, const SweepConfig& cfg,
                      core::SyncMode mode) {
  const std::vector<std::size_t> weights = home_weights(agents);
  const sim::ShardPlan plan =
      cfg.weighted_shards ? sim::ShardPlan::make_weighted(weights, cfg.shards)
                          : sim::ShardPlan::make(agents, cfg.shards);
  const auto run = mode == core::SyncMode::kPipeline ? run_pipeline : run_bsp;
  PointResult result;
  const std::uint64_t first = run(agents, cfg, plan, weights, &result);
  const std::uint64_t twin = run(agents, cfg, plan, weights, nullptr);
  result.hash = first;
  result.deterministic = first == twin;
  return result;
}

void print_point_json(std::FILE* f, const PointResult& p, bool last) {
  std::fprintf(
      f,
      "    {\"agents\": %zu, \"shards\": %zu, \"mode\": \"%s\", "
      "\"pool_workers\": %zu, "
      "\"seconds\": %.6f, \"agent_rounds_per_sec\": %.1f, "
      "\"links_per_round\": %" PRIu64 ", "
      "\"batched_msgs\": %" PRIu64 ", "
      "\"batched_bytes\": %" PRIu64 ", "
      "\"batched_wire_bytes\": %" PRIu64 ", "
      "\"batches\": %" PRIu64 ", "
      "\"max_batch_depth\": %" PRIu64 ", "
      "\"logical_bytes\": %" PRIu64 ", "
      "\"wire_bytes\": %" PRIu64 ", "
      "\"wire_ratio\": %.3f, "
      "\"imbalance\": %.3f, "
      "\"cost_imbalance\": %.3f, "
      "\"max_rounds_in_flight\": %" PRIu64 ", "
      "\"stall_seconds\": %.6f, "
      "\"overlap_seconds\": %.6f, "
      "\"deterministic\": %s, "
      "\"param_hash\": \"%016" PRIx64 "\"}%s\n",
      p.agents, p.shards, core::sync_mode_name(p.mode),
      util::ThreadPool::global().size(), p.seconds, p.agent_rounds_per_sec,
      p.links_per_round, p.router.messages_batched, p.router.batched_bytes,
      p.router.batched_wire_bytes, p.router.batches_flushed,
      p.router.max_batch_depth, p.logical_bytes, p.wire_bytes,
      p.codec.ratio(), p.imbalance, p.cost_imbalance,
      p.pipeline.max_rounds_in_flight, p.pipeline.stall_seconds,
      p.pipeline.overlap_seconds, p.deterministic ? "true" : "false",
      p.hash, last ? "" : ",");
}

std::vector<std::size_t> parse_csv_sizes(const char* s) {
  std::vector<std::size_t> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(std::stoul(cur));
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

/// Fields the parent needs back out of a child's point line.
struct ParsedPoint {
  std::size_t agents = 0;
  std::size_t pool_workers = 0;
  std::string mode;
  double rate = 0.0;
  double stall = 0.0;
  double overlap = 0.0;
  std::string hash;
  bool deterministic = false;
};

bool parse_point_line(const std::string& line, ParsedPoint* out) {
  const auto find_num = [&](const char* key, double* value) {
    const char* at = std::strstr(line.c_str(), key);
    return at != nullptr && std::sscanf(at + std::strlen(key), "%lf", value) == 1;
  };
  double agents = 0.0;
  double workers = 0.0;
  if (!find_num("\"agents\": ", &agents) ||
      !find_num("\"pool_workers\": ", &workers) ||
      !find_num("\"agent_rounds_per_sec\": ", &out->rate) ||
      !find_num("\"stall_seconds\": ", &out->stall) ||
      !find_num("\"overlap_seconds\": ", &out->overlap)) {
    return false;
  }
  out->agents = static_cast<std::size_t>(agents);
  out->pool_workers = static_cast<std::size_t>(workers);
  const char* mode = std::strstr(line.c_str(), "\"mode\": \"");
  const char* hash = std::strstr(line.c_str(), "\"param_hash\": \"");
  if (mode == nullptr || hash == nullptr) return false;
  mode += std::strlen("\"mode\": \"");
  out->mode.assign(mode, std::strcspn(mode, "\""));
  hash += std::strlen("\"param_hash\": \"");
  out->hash.assign(hash, std::strcspn(hash, "\""));
  out->deterministic =
      std::strstr(line.c_str(), "\"deterministic\": true") != nullptr;
  return true;
}

/// Child mode: run every (agents, mode) point at this process's pool
/// size and append the JSON point lines to `emit_path`.
int run_child(const std::vector<std::size_t>& agent_counts,
              const SweepConfig& cfg, const std::string& emit_path) {
  std::FILE* f = std::fopen(emit_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", emit_path.c_str());
    return 1;
  }
  bool all_deterministic = true;
  for (std::size_t i = 0; i < agent_counts.size(); ++i) {
    for (const core::SyncMode mode :
         {core::SyncMode::kBsp, core::SyncMode::kPipeline}) {
      if (mode == core::SyncMode::kPipeline && cfg.shards <= 1) continue;
      const PointResult p = run_point(agent_counts[i], cfg, mode);
      all_deterministic = all_deterministic && p.deterministic;
      print_point_json(f, p, /*last=*/false);
    }
  }
  std::fclose(f);
  if (!all_deterministic) {
    std::fprintf(stderr, "FATAL: twin identically seeded runs diverged\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig cfg;
  std::vector<std::size_t> agent_counts = {100, 1000, 10000, 100000};
  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  std::string out_path = "BENCH_scale.json";
  std::string emit_path;  // non-empty: child mode
  std::string agents_csv = "100,1000,10000,100000";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--agents") == 0 && i + 1 < argc) {
      agents_csv = argv[++i];
      agent_counts = parse_csv_sizes(agents_csv.c_str());
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      cfg.rounds = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--params") == 0 && i + 1 < argc) {
      cfg.params = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cfg.shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--pool-workers") == 0 && i + 1 < argc) {
      worker_counts = parse_csv_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--fanout") == 0 && i + 1 < argc) {
      cfg.fanout = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < argc) {
      const auto kind = net::parse_topology_kind(argv[++i]);
      if (!kind) {
        std::fprintf(stderr, "unknown topology %s\n", argv[i]);
        return 2;
      }
      cfg.topology = *kind;
    } else if (std::strcmp(argv[i], "--no-wire-codec") == 0) {
      cfg.wire_codec = false;
    } else if (std::strcmp(argv[i], "--uniform-shards") == 0) {
      cfg.weighted_shards = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--emit") == 0 && i + 1 < argc) {
      emit_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--agents CSV] [--rounds R] [--params P] "
                   "[--shards S] [--pool-workers CSV] [--topology NAME] "
                   "[--fanout N] [--uniform-shards] [--no-wire-codec] "
                   "[--out P]\n",
                   argv[0]);
      return 2;
    }
  }
  if (agent_counts.empty() || worker_counts.empty()) {
    std::fprintf(stderr, "scale_sweep: empty --agents or --pool-workers\n");
    return 2;
  }

  if (!emit_path.empty()) {
    return run_child(agent_counts, cfg, emit_path);
  }

  bench::print_figure_header(
      "Sharded federation engine scale sweep (perf baseline)",
      "city-scale DFL needs O(N*degree) broadcast and bounded threads — "
      "the pipelined engine retires the per-phase barriers on top");
  std::printf("topology=%s params=%zu rounds=%zu shards=%zu plan=%s\n\n",
              net::topology_name(cfg.topology), cfg.params, cfg.rounds,
              cfg.shards, cfg.weighted_shards ? "weighted" : "uniform");

  // One child process per pool worker count: PFDRL_POOL_WORKERS is read
  // once at the pool's construction, so the sweep needs a fresh process
  // per count to honor it everywhere (exchange internals included).
  std::vector<std::string> point_lines;
  std::vector<ParsedPoint> parsed;
  bool all_deterministic = true;
  for (const std::size_t workers : worker_counts) {
    const std::string child_out =
        out_path + ".w" + std::to_string(workers) + ".tmp";
    std::string cmd = "PFDRL_POOL_WORKERS=" + std::to_string(workers) + " '" +
                      argv[0] + "' --emit '" + child_out + "' --agents '" +
                      agents_csv + "' --rounds " + std::to_string(cfg.rounds) +
                      " --params " + std::to_string(cfg.params) + " --shards " +
                      std::to_string(cfg.shards) + " --fanout " +
                      std::to_string(cfg.fanout) + " --topology " +
                      net::topology_name(cfg.topology);
    if (!cfg.wire_codec) cmd += " --no-wire-codec";
    if (!cfg.weighted_shards) cmd += " --uniform-shards";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "scale_sweep: child at %zu workers failed (%d)\n",
                   workers, rc);
      return 1;
    }
    std::FILE* cf = std::fopen(child_out.c_str(), "r");
    if (cf == nullptr) {
      std::fprintf(stderr, "scale_sweep: child wrote no %s\n",
                   child_out.c_str());
      return 1;
    }
    char line[2048];
    while (std::fgets(line, sizeof(line), cf) != nullptr) {
      ParsedPoint p;
      if (!parse_point_line(line, &p)) {
        std::fprintf(stderr, "scale_sweep: unparsable child line: %s", line);
        std::fclose(cf);
        return 1;
      }
      point_lines.emplace_back(line);
      all_deterministic = all_deterministic && p.deterministic;
      parsed.push_back(std::move(p));
    }
    std::fclose(cf);
    std::remove(child_out.c_str());
  }

  // The cross-engine contract: one hash per agent count, across every
  // (mode, pool_workers) combination.
  std::map<std::size_t, std::string> hash_by_agents;
  bool hash_consistent = true;
  for (const ParsedPoint& p : parsed) {
    auto [it, inserted] = hash_by_agents.emplace(p.agents, p.hash);
    if (!inserted && it->second != p.hash) {
      std::fprintf(stderr,
                   "FATAL: param_hash mismatch at %zu agents (%s workers=%zu: "
                   "%s vs %s)\n",
                   p.agents, p.mode.c_str(), p.pool_workers, p.hash.c_str(),
                   it->second.c_str());
      hash_consistent = false;
    }
  }

  util::TextTable table({"agents", "mode", "workers", "agent-rounds/s",
                         "stall s", "overlap s", "deterministic"});
  for (const ParsedPoint& p : parsed) {
    table.add_row({std::to_string(p.agents), p.mode,
                   std::to_string(p.pool_workers),
                   util::fmt_double(p.rate, 0), util::fmt_double(p.stall, 3),
                   util::fmt_double(p.overlap, 3),
                   p.deterministic ? "yes" : "NO"});
  }
  table.print();

  // Pipeline-over-bsp speedups per (agents, workers).
  struct Speedup {
    std::size_t agents;
    std::size_t workers;
    double ratio;
  };
  std::vector<Speedup> speedups;
  for (const ParsedPoint& p : parsed) {
    if (p.mode != "pipeline") continue;
    for (const ParsedPoint& q : parsed) {
      if (q.mode == "bsp" && q.agents == p.agents &&
          q.pool_workers == p.pool_workers && q.rate > 0.0) {
        speedups.push_back({p.agents, p.pool_workers, p.rate / q.rate});
      }
    }
  }
  if (!speedups.empty()) {
    std::printf("\npipeline over bsp (agent-rounds/s):\n");
    util::TextTable stable({"agents", "workers", "speedup"});
    for (const Speedup& s : speedups) {
      stable.add_row({std::to_string(s.agents), std::to_string(s.workers),
                      util::fmt_double(s.ratio, 2)});
    }
    stable.print();
  }

  if (!all_deterministic || !hash_consistent) {
    std::fprintf(stderr, "FATAL: engine determinism contract violated\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"scale_sweep\",\n"
               "  \"topology\": \"%s\",\n"
               "  \"params\": %zu,\n"
               "  \"rounds\": %zu,\n"
               "  \"shards\": %zu,\n"
               "  \"weighted_shards\": %s,\n"
               "  \"wire_codec\": %s,\n"
               "  \"deterministic\": %s,\n"
               "  \"hash_consistent\": %s,\n"
               "  \"points\": [\n",
               net::topology_name(cfg.topology), cfg.params, cfg.rounds,
               cfg.shards, cfg.weighted_shards ? "true" : "false",
               cfg.wire_codec ? "true" : "false",
               all_deterministic ? "true" : "false",
               hash_consistent ? "true" : "false");
  for (std::size_t i = 0; i < point_lines.size(); ++i) {
    std::string line = point_lines[i];
    if (i + 1 == point_lines.size()) {
      // Strip the trailing comma the child always emits.
      const std::size_t tail = line.rfind("},");
      if (tail != std::string::npos) line.replace(tail, 2, "}");
    }
    std::fputs(line.c_str(), f);
  }
  std::fprintf(f, "  ],\n  \"speedups\": [\n");
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    std::fprintf(f,
                 "    {\"agents\": %zu, \"pool_workers\": %zu, "
                 "\"pipeline_over_bsp\": %.2f}%s\n",
                 speedups[i].agents, speedups[i].workers, speedups[i].ratio,
                 i + 1 < speedups.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nbaseline written to %s\n", out_path.c_str());

  bench::dump_metrics("scale_sweep");
  return 0;
}
