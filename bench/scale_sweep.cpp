// City-scale federation engine sweep — the perf baseline for the sharded
// bulk-synchronous refactor (docs/scaling.md).
//
// The full EMS pipeline cannot run 100k homes on a laptop (the DQN +
// forecaster state alone would swamp RAM), but the *engine* the refactor
// changed — sharded local steps, topology broadcast, cross-shard batch
// routing, parallel drain/aggregate — can, and that is what this bench
// measures. Each point spins up N synthetic agents with P-double
// parameter slices, runs R bulk-synchronous rounds (sharded local update
// via util::sharded_for, then a full fl::ParamExchange round over the
// chosen topology with the net::ShardRouter batching cross-shard
// traffic), and reports agent-rounds/second plus the router's batching
// accounting. The default hierarchical topology aligns its clusters with
// the shard plan, so the only cross-shard traffic is hub-to-hub.
//
// Determinism guard: every point runs twice with the same seed and the
// final parameter vectors must match bitwise (fixed-order FNV hash) —
// the sharded engine contract that twin runs agree regardless of the
// thread schedule.
//
// Writes a JSON summary (default BENCH_scale.json in the CWD; the
// committed baseline at the repo root is produced by the default flags).
// Flags: --agents CSV, --rounds R, --params P, --shards S (0 = one per
// pool worker), --topology NAME, --fanout N, --out PATH.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "fl/exchange.hpp"
#include "net/bus.hpp"
#include "net/codec.hpp"
#include "net/shard_router.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "util/shard.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pfdrl;

struct SweepConfig {
  std::size_t params = 64;
  std::size_t rounds = 3;
  std::size_t shards = 0;  // 0 = one shard per pool worker
  net::TopologyKind topology = net::TopologyKind::kHierarchical;
  std::size_t fanout = 4;
  std::uint64_t seed = 42;
  /// Lossless delta/XOR wire codec on the engine bus (docs/wire.md).
  /// On by default so the committed baseline carries post-codec bytes;
  /// --no-wire-codec measures the uncompressed engine.
  bool wire_codec = true;
};

struct PointResult {
  std::size_t agents = 0;
  std::size_t shards = 0;
  double seconds = 0.0;
  double agent_rounds_per_sec = 0.0;
  std::uint64_t links_per_round = 0;
  double imbalance = 1.0;
  net::ShardRouterStats router;
  net::CodecStats codec;
  std::uint64_t logical_bytes = 0;  ///< bus pre-codec bytes
  std::uint64_t wire_bytes = 0;     ///< bus post-codec bytes
  std::uint64_t hash = 0;
  bool deterministic = false;
};

/// Fixed-order FNV-1a over the raw parameter bytes — bitwise, and
/// independent of how many threads produced them.
std::uint64_t hash_params(const std::vector<double>& params) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(params.data());
  for (std::size_t i = 0; i < params.size() * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

/// One engine run: R bulk-synchronous rounds over N agents. Returns the
/// final parameter hash; fills `out` with the run's accounting.
std::uint64_t run_engine(std::size_t agents, const SweepConfig& cfg,
                         PointResult* out) {
  const sim::ShardPlan plan = sim::ShardPlan::make(
      agents,
      cfg.shards > 0 ? cfg.shards : util::ThreadPool::global().size());

  net::TopologyOptions topo;
  topo.cluster_size = plan.aligned_cluster_size();
  topo.fanout = cfg.fanout;
  topo.gossip_seed = cfg.seed;
  net::MessageBus bus(net::Topology(cfg.topology, agents, topo), {});
  net::ShardRouter router(agents, plan.shards);
  if (plan.sharded()) bus.set_shard_router(&router);
  net::WireCodec codec;
  if (cfg.wire_codec) bus.set_codec(&codec);

  // Flat N x P parameter arena; agent a owns [a*P, (a+1)*P).
  const std::size_t P = cfg.params;
  std::vector<double> params(agents * P);
  for (std::size_t a = 0; a < agents; ++a) {
    for (std::size_t i = 0; i < P; ++i) {
      params[a * P + i] = static_cast<double>(
                              net::detail::mix64(cfg.seed ^ (a * P + i)) >> 40) *
                          1e-6;
    }
  }

  std::vector<fl::ExchangeItem> items(agents);
  for (std::size_t a = 0; a < agents; ++a) {
    const std::span<double> slice(params.data() + a * P, P);
    items[a] = {.agent = static_cast<net::AgentId>(a),
                .device_type = 0,
                .send = slice,
                .in_place = slice};
  }

  fl::ParamExchange::Options opts;
  opts.kind = net::MessageKind::kForecastParams;
  opts.min_group = 2;
  opts.parallel = plan.sharded();
  fl::ParamExchange exchange(bus, opts);

  util::Stopwatch watch;
  double imbalance_sum = 0.0;
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    // Local step: every agent advances its slice by a pure per-agent
    // function of (seed, round, agent) — schedule-independent by
    // construction, like the pipeline's forked per-job RNGs.
    const util::ShardTiming timing = util::sharded_for(
        util::ThreadPool::global(), agents, plan.shards,
        [&](std::size_t a) { return plan.shard_of(a); },
        [&](std::size_t a) {
          for (std::size_t i = 0; i < P; ++i) {
            const std::uint64_t g =
                net::detail::mix64(cfg.seed ^ (r * 1315423911ULL) ^
                                   (a * P + i));
            params[a * P + i] =
                params[a * P + i] * 0.999 +
                static_cast<double>(g >> 40) * 1e-9;
          }
        });
    imbalance_sum += timing.max_over_mean();
    // Exchange barrier: broadcast along the topology (cross-shard legs
    // batched by the router), drain, average per group, write in place.
    exchange.round(items, r, [](std::size_t, std::span<const double>) {});
  }
  const double seconds = watch.elapsed_seconds();

  if (out != nullptr) {
    out->agents = agents;
    out->shards = plan.shards;
    out->seconds = seconds;
    out->agent_rounds_per_sec =
        seconds > 0.0
            ? static_cast<double>(agents * cfg.rounds) / seconds
            : 0.0;
    std::uint64_t links = 0;
    for (std::size_t a = 0; a < agents; ++a) {
      links += bus.topology().broadcast_links(static_cast<net::AgentId>(a));
    }
    out->links_per_round = links;
    out->imbalance =
        cfg.rounds > 0 ? imbalance_sum / static_cast<double>(cfg.rounds) : 1.0;
    out->router = router.stats();
    out->codec = codec.stats();
    out->logical_bytes = bus.stats().logical_bytes;
    out->wire_bytes = bus.stats().bytes_on_wire;
  }
  return hash_params(params);
}

PointResult run_point(std::size_t agents, const SweepConfig& cfg) {
  PointResult result;
  const std::uint64_t first = run_engine(agents, cfg, &result);
  const std::uint64_t twin = run_engine(agents, cfg, nullptr);
  result.hash = first;
  result.deterministic = first == twin;
  return result;
}

std::vector<std::size_t> parse_csv_sizes(const char* s) {
  std::vector<std::size_t> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(std::stoul(cur));
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig cfg;
  std::vector<std::size_t> agent_counts = {100, 1000, 10000, 100000};
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--agents") == 0 && i + 1 < argc) {
      agent_counts = parse_csv_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      cfg.rounds = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--params") == 0 && i + 1 < argc) {
      cfg.params = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cfg.shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--fanout") == 0 && i + 1 < argc) {
      cfg.fanout = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < argc) {
      const auto kind = net::parse_topology_kind(argv[++i]);
      if (!kind) {
        std::fprintf(stderr, "unknown topology %s\n", argv[i]);
        return 2;
      }
      cfg.topology = *kind;
    } else if (std::strcmp(argv[i], "--no-wire-codec") == 0) {
      cfg.wire_codec = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--agents CSV] [--rounds R] [--params P] "
                   "[--shards S] [--topology NAME] [--fanout N] "
                   "[--no-wire-codec] [--out P]\n",
                   argv[0]);
      return 2;
    }
  }
  if (agent_counts.empty()) {
    std::fprintf(stderr, "scale_sweep: --agents list is empty\n");
    return 2;
  }

  bench::print_figure_header(
      "Sharded federation engine scale sweep (perf baseline)",
      "city-scale DFL needs O(N*degree) broadcast and bounded threads — "
      "the sharded bulk-synchronous engine delivers both");
  std::printf("topology=%s params=%zu rounds=%zu pool_workers=%zu\n\n",
              net::topology_name(cfg.topology), cfg.params, cfg.rounds,
              util::ThreadPool::global().size());

  std::vector<PointResult> points;
  bool all_deterministic = true;
  for (std::size_t agents : agent_counts) {
    points.push_back(run_point(agents, cfg));
    all_deterministic = all_deterministic && points.back().deterministic;
  }

  util::TextTable table({"agents", "shards", "seconds", "agent-rounds/s",
                         "links/round", "batched msgs", "wire ratio",
                         "imbalance", "deterministic"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.agents), std::to_string(p.shards),
                   util::fmt_double(p.seconds, 3),
                   util::fmt_double(p.agent_rounds_per_sec, 0),
                   std::to_string(p.links_per_round),
                   std::to_string(p.router.messages_batched),
                   util::fmt_double(p.codec.ratio(), 2),
                   util::fmt_double(p.imbalance, 3),
                   p.deterministic ? "yes" : "NO"});
  }
  table.print();

  if (!all_deterministic) {
    std::fprintf(stderr, "FATAL: twin identically seeded runs diverged\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"scale_sweep\",\n"
               "  \"topology\": \"%s\",\n"
               "  \"params\": %zu,\n"
               "  \"rounds\": %zu,\n"
               "  \"pool_workers\": %zu,\n"
               "  \"wire_codec\": %s,\n"
               "  \"deterministic\": %s,\n"
               "  \"points\": [\n",
               net::topology_name(cfg.topology), cfg.params, cfg.rounds,
               util::ThreadPool::global().size(),
               cfg.wire_codec ? "true" : "false",
               all_deterministic ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    std::fprintf(f,
                 "    {\"agents\": %zu, \"shards\": %zu, "
                 "\"seconds\": %.6f, \"agent_rounds_per_sec\": %.1f, "
                 "\"links_per_round\": %" PRIu64 ", "
                 "\"batched_msgs\": %" PRIu64 ", "
                 "\"batched_bytes\": %" PRIu64 ", "
                 "\"batched_wire_bytes\": %" PRIu64 ", "
                 "\"batches\": %" PRIu64 ", "
                 "\"max_batch_depth\": %" PRIu64 ", "
                 "\"logical_bytes\": %" PRIu64 ", "
                 "\"wire_bytes\": %" PRIu64 ", "
                 "\"wire_ratio\": %.3f, "
                 "\"imbalance\": %.3f, "
                 "\"param_hash\": \"%016" PRIx64 "\"}%s\n",
                 p.agents, p.shards, p.seconds, p.agent_rounds_per_sec,
                 p.links_per_round, p.router.messages_batched,
                 p.router.batched_bytes, p.router.batched_wire_bytes,
                 p.router.batches_flushed, p.router.max_batch_depth,
                 p.logical_bytes, p.wire_bytes, p.codec.ratio(),
                 p.imbalance, p.hash,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nbaseline written to %s\n", out_path.c_str());

  bench::dump_metrics("scale_sweep");
  return 0;
}
