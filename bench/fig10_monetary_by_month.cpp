// Figure 10 — saved monetary cost per residence by month, fixed-rate vs
// variable-rate electricity plan.
// Paper: the two plans are equal on average; the variable plan saves
// more in spring (Apr-Jun), the fixed plan more in late summer (Aug-Oct).
//
// Methodology mirrors the paper's: the saved *energy* per day is the
// same across months (the EMS policy does not change); what varies is
// the price attached to the saved kilowatt-hours. We therefore train
// PFDRL once, take its hourly savings profile, and bill that profile
// under both tariffs for each month.
#include "common.hpp"

#include "core/pipeline.hpp"
#include "data/tariff.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 10: saved dollars per client per month, fixed vs variable",
      "plans trade places: variable wins Apr-Jun, fixed wins Aug-Oct");

  const auto scenario = bench::bench_scenario(/*days=*/5);
  const std::size_t day = data::kMinutesPerDay;

  auto cfg = sim::bench_pipeline(core::EmsMethod::kPfdrl);
  core::EmsPipeline pipeline(scenario.traces, cfg);
  pipeline.train_forecasters(0, 2 * day);
  pipeline.train_ems(2 * day, 4 * day);
  const auto results = pipeline.evaluate(4 * day, 5 * day);

  // Mean hourly savings profile per client (kWh per hour of day).
  std::array<double, 24> saved_by_hour{};
  for (const auto& r : results) {
    for (std::size_t h = 0; h < 24; ++h) {
      saved_by_hour[h] += r.saved_kwh_by_hour[h];
    }
  }
  const auto homes = static_cast<double>(results.size());
  for (auto& v : saved_by_hour) v /= homes;

  const data::FixedTariff fixed;
  const data::VariableTariff variable;

  util::TextTable table({"month", "fixed $ / client", "variable $ / client"});
  double fixed_total = 0.0, variable_total = 0.0;
  for (std::uint32_t month = 0; month < 12; ++month) {
    double fixed_cents = 0.0;
    double var_cents = 0.0;
    for (std::size_t hour = 0; hour < 24; ++hour) {
      // Bill each hour's savings at that hour's price, 30 days a month.
      const std::size_t minute_of_year =
          month * data::kMinutesPerMonth + hour * 60 + 30;
      fixed_cents += saved_by_hour[hour] * 30.0 *
                     fixed.cents_per_kwh(minute_of_year);
      var_cents += saved_by_hour[hour] * 30.0 *
                   variable.cents_per_kwh(minute_of_year);
    }
    fixed_total += fixed_cents / 100.0;
    variable_total += var_cents / 100.0;
    table.add_row({std::to_string(month + 1),
                   util::fmt_double(fixed_cents / 100.0, 3),
                   util::fmt_double(var_cents / 100.0, 3)});
  }
  table.print();
  std::printf("\nyear total: fixed $%.2f, variable $%.2f per client\n",
              fixed_total, variable_total);
  return 0;
}
