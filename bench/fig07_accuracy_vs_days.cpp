// Figure 7 — prediction accuracy vs accumulated training days.
// Paper: accuracy grows with training days (fast early, saturating),
// ordering LR < SVM < BP < LSTM throughout.
#include "common.hpp"

#include "fl/dfl.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 7: forecast accuracy vs training days (accumulative DFL)",
      "accuracy grows with days, early growth steepest; LR<SVM<BP<LSTM");

  const std::size_t total_days = 7;  // last day held out for evaluation
  const auto scenario = bench::bench_scenario(total_days + 1);
  const std::size_t day = data::kMinutesPerDay;
  const std::size_t eval_begin = total_days * day;

  // One trainer per method, trained one day at a time; evaluate on the
  // held-out final day after each.
  std::vector<std::unique_ptr<fl::DflTrainer>> trainers;
  for (auto method : {forecast::Method::kLr, forecast::Method::kSvr,
                      forecast::Method::kBp, forecast::Method::kLstm}) {
    fl::DflConfig cfg;
    cfg.method = method;
    cfg.window.window = 16;
    trainers.push_back(std::make_unique<fl::DflTrainer>(scenario.traces, cfg));
  }

  util::TextTable table({"days", "LR", "SVM", "BP", "LSTM"});
  for (std::size_t d = 0; d < total_days; ++d) {
    std::vector<std::string> row = {std::to_string(d + 1)};
    for (auto& trainer : trainers) {
      trainer->run(d * day, (d + 1) * day);
      row.push_back(util::fmt_double(
          trainer->mean_test_accuracy(eval_begin, (total_days + 1) * day),
          3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
