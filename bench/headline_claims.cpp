// The paper's two headline numbers, end-to-end with the paper-scale
// configuration (LSTM forecasters in DFL, 8x100 DQN, alpha=6,
// beta=gamma=12h):
//   * "92% load forecasting accuracy"
//   * "saves 98% of total standby energy consumption in a day"
#include "common.hpp"

#include "core/pipeline.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Headline claims (paper-scale PFDRL)",
      "92% load forecasting accuracy; 98% of standby energy saved per day");

  const auto scenario = bench::bench_scenario(/*days=*/7);
  const std::size_t day = data::kMinutesPerDay;

  auto cfg = sim::paper_pipeline(core::EmsMethod::kPfdrl);
  core::EmsPipeline pipeline(scenario.traces, cfg);

  pipeline.train_forecasters(0, 4 * day);
  const double acc = pipeline.forecast_accuracy(6 * day, 7 * day);

  pipeline.train_ems(4 * day, 6 * day);
  const auto results = pipeline.evaluate(6 * day, 7 * day);

  double gross = 0.0, net = 0.0, standby = 0.0;
  std::size_t violations = 0;
  for (const auto& r : results) {
    gross += r.saved_kwh;
    net += std::max(0.0, r.net_saved_kwh());
    standby += r.standby_kwh;
    violations += r.comfort_violations;
  }

  util::TextTable table({"metric", "paper", "measured"});
  table.add_row({"load forecasting accuracy", "92%", util::fmt_percent(acc)});
  table.add_row({"standby energy saved (gross)", "98%",
                 util::fmt_percent(gross / standby)});
  table.add_row({"standby energy saved (net of interruptions)", "-",
                 util::fmt_percent(net / standby)});
  table.add_row({"comfort violations / client / day", "-",
                 util::fmt_double(static_cast<double>(violations) /
                                      static_cast<double>(results.size()),
                                  1)});
  table.print();

  const auto fc_comm = pipeline.forecast_comm_stats();
  const auto drl_comm = pipeline.drl_comm_stats();
  std::printf(
      "\ncommunication: forecast %.1f MiB, DRL %.1f MiB — all inside the\n"
      "residential area; no cloud service involved.\n",
      static_cast<double>(fc_comm.bytes_on_wire) / (1024.0 * 1024.0),
      static_cast<double>(drl_comm.bytes_on_wire) / (1024.0 * 1024.0));
  return 0;
}
