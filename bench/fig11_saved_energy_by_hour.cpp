// Figure 11 — saved energy per residence by hour of day, all methods.
// Paper: minimum around 2-4 AM (least usage -> least reclaimable),
// maximum from midday to midnight; Local ≈ PFDRL ≥ Cloud ≈ FL ≈ FRL.
#include "common.hpp"

#include <array>

#include "core/pipeline.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 11: saved energy per client by hour of day",
      "minimum 2-4 AM, maximum midday to midnight");

  const auto scenario = bench::bench_scenario(/*days=*/6);
  const std::size_t day = data::kMinutesPerDay;

  const core::EmsMethod methods[] = {core::EmsMethod::kLocal,
                                     core::EmsMethod::kCloud,
                                     core::EmsMethod::kFl,
                                     core::EmsMethod::kFrl,
                                     core::EmsMethod::kPfdrl};

  std::vector<std::array<double, 24>> curves;
  for (auto method : methods) {
    auto cfg = sim::bench_pipeline(method);
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);
    pipeline.train_ems(2 * day, 5 * day);
    const auto results = pipeline.evaluate(5 * day, 6 * day);
    std::array<double, 24> curve{};
    for (const auto& r : results) {
      for (std::size_t h = 0; h < 24; ++h) {
        curve[h] += r.saved_kwh_by_hour[h];
      }
    }
    for (auto& v : curve) v /= static_cast<double>(results.size());
    curves.push_back(curve);
  }

  util::TextTable table(
      {"hour", "Local", "Cloud", "FL", "FRL", "PFDRL"});
  for (std::size_t h = 0; h < 24; h += 2) {
    std::vector<std::string> row = {std::to_string(h)};
    for (const auto& curve : curves) {
      row.push_back(util::fmt_double(curve[h] * 1000.0, 2));  // Wh
    }
    table.add_row(std::move(row));
  }
  table.print("saved energy per client (Wh) by hour:");
  return 0;
}
