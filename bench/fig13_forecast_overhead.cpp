// Figure 13 — load-forecasting time overhead (training and testing) for
// the four methods, via google-benchmark.
// Paper: LR ≈ SVM ≈ BP ≈ LSTM (all cheap enough for hourly retraining).
// On our CPU substrate the LSTM's BPTT is relatively pricier — the
// ordering of the cheap methods still matches.
#include <benchmark/benchmark.h>

#include "data/household.hpp"
#include "data/trace.hpp"
#include "forecast/forecaster.hpp"

namespace {

using namespace pfdrl;

const data::DeviceTrace& shared_trace() {
  static const data::DeviceTrace trace = [] {
    data::NeighborhoodConfig nc;
    nc.num_households = 1;
    nc.min_devices = 5;
    nc.max_devices = 5;
    const auto home = data::make_neighborhood(nc)[0];
    data::TraceConfig tc;
    tc.days = 2;
    const auto household = data::generate_household_trace(home, tc);
    for (const auto& d : household.devices) {
      if (!d.spec.protected_device) return d;
    }
    return household.devices[0];
  }();
  return trace;
}

data::WindowConfig bench_window() {
  data::WindowConfig w;
  w.window = 16;
  return w;
}

void BM_ForecastTrain(benchmark::State& state) {
  const auto method = static_cast<forecast::Method>(state.range(0));
  const auto& trace = shared_trace();
  for (auto _ : state) {
    auto model = forecast::make_forecaster(method, bench_window(), 7);
    forecast::TrainConfig tc;  // per-method tuned defaults
    util::Rng rng(1);
    model->train(trace, 0, data::kMinutesPerDay, tc, rng);
    benchmark::DoNotOptimize(model->parameters().data());
  }
  state.SetLabel(forecast::method_name(method));
}

void BM_ForecastTest(benchmark::State& state) {
  const auto method = static_cast<forecast::Method>(state.range(0));
  const auto& trace = shared_trace();
  auto model = forecast::make_forecaster(method, bench_window(), 7);
  forecast::TrainConfig tc;
  util::Rng rng(1);
  model->train(trace, 0, data::kMinutesPerDay, tc, rng);
  for (auto _ : state) {
    const auto preds = model->predict_series(trace, data::kMinutesPerDay,
                                             2 * data::kMinutesPerDay);
    benchmark::DoNotOptimize(preds.data());
  }
  state.SetLabel(forecast::method_name(method));
}

BENCHMARK(BM_ForecastTrain)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ForecastTest)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
