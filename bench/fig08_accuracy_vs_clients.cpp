// Figure 8 — prediction accuracy vs number of participating residences.
// Paper: accuracy improves up to ~100 clients, then drops as the pool of
// distinct load patterns (archetypes) keeps growing and plain averaging
// mixes increasingly conflicting patterns.
#include "common.hpp"

#include "fl/dfl.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 8: forecast accuracy vs number of clients",
      "improves with clients up to ~100, then drops (pattern diversity)");

  const std::size_t day = data::kMinutesPerDay;

  util::TextTable table({"clients", "archetypes", "LR accuracy",
                         "BP accuracy"});
  for (std::uint32_t clients : {10u, 40u, 70u, 100u, 130u, 160u, 190u}) {
    sim::ScenarioConfig sc;
    sc.neighborhood.num_households = clients;
    sc.neighborhood.min_devices = 3;
    sc.neighborhood.max_devices = 4;
    sc.neighborhood.seed = 42;
    sc.trace.days = 3;
    sc.trace.seed = 42;
    const auto scenario = sim::Scenario::generate(sc);
    const auto archetypes = data::effective_archetypes(sc.neighborhood);

    std::vector<std::string> row = {std::to_string(clients),
                                    std::to_string(archetypes)};
    for (auto method : {forecast::Method::kLr, forecast::Method::kBp}) {
      fl::DflConfig cfg;
      cfg.method = method;
      cfg.window.window = 12;
      if (method == forecast::Method::kBp) {
        cfg.train.epochs = 6;  // trimmed for the 190-client point
        cfg.train.stride = 3;
      }
      fl::DflTrainer trainer(scenario.traces, cfg);
      trainer.run(0, 2 * day);
      row.push_back(util::fmt_percent(
          trainer.mean_test_accuracy(2 * day, 3 * day)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
