// Figure 6 — load-forecasting accuracy by hour of day.
// Paper: accuracy higher 2-6 AM and 12-16 PM (stable usage), lower in
// mornings/evenings where residences diverge; ordering LR<SVM<BP<LSTM.
#include "common.hpp"

#include <array>

#include "fl/dfl.hpp"
#include "forecast/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 6: forecast accuracy by hour of day",
      "higher 2-6 AM and 12-16 PM; LR < SVM < BP < LSTM");

  const auto scenario = bench::bench_scenario(/*days=*/4);
  const std::size_t day = data::kMinutesPerDay;

  std::vector<std::array<double, 24>> curves;
  for (auto method : {forecast::Method::kLr, forecast::Method::kSvr,
                      forecast::Method::kBp, forecast::Method::kLstm}) {
    fl::DflConfig cfg;
    cfg.method = method;
    cfg.window.window = 16;
    fl::DflTrainer trainer(scenario.traces, cfg);
    trainer.run(0, 3 * day);

    std::array<util::RunningStats, 24> buckets;
    for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
      for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
        const auto by_hour = forecast::accuracy_by_hour(
            trainer.forecaster(h, d), scenario.traces[h].devices[d], 3 * day,
            4 * day);
        for (std::size_t hr = 0; hr < 24; ++hr) buckets[hr].add(by_hour[hr]);
      }
    }
    std::array<double, 24> curve{};
    for (std::size_t hr = 0; hr < 24; ++hr) curve[hr] = buckets[hr].mean();
    curves.push_back(curve);
  }

  util::TextTable table({"hour", "LR", "SVM", "BP", "LSTM"});
  for (std::size_t hr = 0; hr < 24; hr += 2) {
    table.add_row({std::to_string(hr), util::fmt_double(curves[0][hr], 3),
                   util::fmt_double(curves[1][hr], 3),
                   util::fmt_double(curves[2][hr], 3),
                   util::fmt_double(curves[3][hr], 3)});
  }
  table.print();
  return 0;
}
