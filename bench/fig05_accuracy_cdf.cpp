// Figure 5 — CDF of per-prediction load-forecasting accuracy for the
// four methods. Paper: LR < SVM < BP < LSTM stochastically.
#include "common.hpp"

#include "fl/dfl.hpp"
#include "forecast/metrics.hpp"
#include "util/stats.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 5: CDF of load forecasting accuracy (LR/SVM/BP/LSTM)",
      "stochastic ordering LR < SVM < BP < LSTM");

  const auto scenario = bench::bench_scenario(/*days=*/4);
  const std::size_t day = data::kMinutesPerDay;

  const std::vector<double> grid = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                    0.6, 0.7, 0.8, 0.9, 1.0};
  util::TextTable table({"accuracy<=", "LR", "SVM", "BP", "LSTM"});
  std::vector<std::vector<double>> cdfs;
  std::vector<double> means;

  for (auto method : {forecast::Method::kLr, forecast::Method::kSvr,
                      forecast::Method::kBp, forecast::Method::kLstm}) {
    fl::DflConfig cfg;
    cfg.method = method;
    cfg.window.window = 16;
    fl::DflTrainer trainer(scenario.traces, cfg);
    trainer.run(0, 3 * day);

    std::vector<double> samples;
    for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
      for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
        const auto s = forecast::accuracy_samples(
            trainer.forecaster(h, d), scenario.traces[h].devices[d], 3 * day,
            4 * day);
        samples.insert(samples.end(), s.begin(), s.end());
      }
    }
    cdfs.push_back(util::empirical_cdf(samples, grid));
    means.push_back(util::mean(samples));
  }

  for (std::size_t g = 0; g < grid.size(); ++g) {
    table.add_row({util::fmt_double(grid[g], 1),
                   util::fmt_double(cdfs[0][g], 3),
                   util::fmt_double(cdfs[1][g], 3),
                   util::fmt_double(cdfs[2][g], 3),
                   util::fmt_double(cdfs[3][g], 3)});
  }
  table.print();
  std::printf("\nmean accuracy: LR=%.3f SVM=%.3f BP=%.3f LSTM=%.3f\n",
              means[0], means[1], means[2], means[3]);
  return 0;
}
