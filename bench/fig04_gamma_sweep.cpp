// Figure 4 — saved standby energy vs DRL broadcast frequency γ.
// Paper: γ = 2, 6, 12 hours all perform best; 12 chosen for traffic.
#include "common.hpp"

#include "core/pipeline.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 4: PFDRL saved standby energy vs DRL broadcast gamma (hours)",
      "gamma = 2-12 h best; 12 chosen for communication efficiency");

  const auto scenario = bench::bench_scenario(/*days=*/6);
  const std::size_t day = data::kMinutesPerDay;

  util::TextTable table({"gamma (h)", "net saved frac", "reward/step",
                         "DRL msgs", "DRL MiB"});
  for (double gamma : {0.1, 0.5, 1.0, 2.0, 6.0, 12.0, 24.0}) {
    auto cfg = sim::bench_pipeline(core::EmsMethod::kPfdrl);
    cfg.gamma_hours = gamma;
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);
    pipeline.train_ems(2 * day, 5 * day);
    const auto results = pipeline.evaluate(5 * day, 6 * day);
    double net = 0.0, standby = 0.0, reward = 0.0;
    std::size_t steps = 0;
    for (const auto& r : results) {
      net += std::max(0.0, r.net_saved_kwh());
      standby += r.standby_kwh;
      reward += r.total_reward;
      steps += r.steps;
    }
    const auto comm = pipeline.drl_comm_stats();
    table.add_row({util::fmt_double(gamma, 1),
                   util::fmt_double(net / standby, 3),
                   util::fmt_double(reward / static_cast<double>(steps), 2),
                   std::to_string(comm.messages_sent),
                   util::fmt_double(static_cast<double>(comm.bytes_on_wire) /
                                        (1024.0 * 1024.0),
                                    1)});
  }
  table.print();
  bench::dump_metrics("fig04_gamma_sweep");
  return 0;
}
