// End-to-end decision throughput of the EMS act path — the recorded
// perf baseline for the allocation-free inference work.
//
// Replays a 20-home neighbourhood's device traces through per-device DQN
// agents (paper 8x100 net) taking one greedy decision per meter interval,
// and reports decisions/second for two implementations of the same math:
//   * workspace — the production path (DqnAgent::act_greedy through the
//     agent's nn::Workspace arena; steady-state zero heap allocations);
//   * legacy    — the pre-arena path replicated locally (fresh state
//     vector + allocating Mlp::predict per decision), kept here so the
//     speedup stays measurable against the code that no longer exists.
// Both paths compute bitwise-identical Q-values (the kernels share the
// accumulation order), so agreement of the chosen actions is asserted.
//
// Writes a JSON summary (default BENCH_pipeline.json in the CWD; see
// docs/performance.md) with the throughput numbers and the nn.* arena
// telemetry. Flags: --homes N, --minutes M, --out PATH.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "ems/env.hpp"
#include "nn/workspace.hpp"
#include "rl/dqn.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace pfdrl;

rl::DqnConfig agent_config(std::uint64_t seed) {
  rl::DqnConfig cfg;  // paper defaults: 8 x 100 ReLU, 3 actions
  cfg.state_dim = ems::EmsEnvironment::kStateDim;
  cfg.seed = seed;
  return cfg;
}

/// The pre-arena act path: allocate the state vector and run the
/// allocating predict(), exactly as DqnAgent::q_values did before the
/// workspace existed.
int legacy_act_greedy(const nn::Mlp& net, const ems::EmsEnvironment& env,
                      std::size_t idx) {
  const std::vector<double> state = env.state_at(idx);
  nn::Matrix x(1, state.size());
  std::copy(state.begin(), state.end(), x.row(0).begin());
  const nn::Matrix q = net.predict(x);
  const auto row = q.row(0);
  return static_cast<int>(std::max_element(row.begin(), row.end()) -
                          row.begin());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t homes = 20;
  std::size_t minutes = 2 * 1440;  // two simulated days
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--homes") == 0 && i + 1 < argc) {
      homes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--minutes") == 0 && i + 1 < argc) {
      minutes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--homes N] [--minutes M] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_figure_header(
      "EMS decision throughput (perf baseline)",
      "allocation-free act path vs the legacy allocating path");

  const std::size_t days = (minutes + 1439) / 1440;
  const sim::Scenario scenario =
      bench::bench_scenario(days, static_cast<std::uint32_t>(homes));
  minutes = std::min(minutes, scenario.minutes());

  // One agent + environment per device. Perfect forecast (the trace's own
  // watts): this bench measures decision throughput, not forecast quality.
  struct Device {
    std::unique_ptr<rl::DqnAgent> agent;
    std::unique_ptr<ems::EmsEnvironment> env;
  };
  std::vector<Device> devices;
  for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
    for (const auto& trace : scenario.traces[h].devices) {
      auto forecast = std::make_shared<const std::vector<double>>(
          trace.watts.begin(),
          trace.watts.begin() + static_cast<std::ptrdiff_t>(minutes));
      devices.push_back(
          {std::make_unique<rl::DqnAgent>(agent_config(h + 1)),
           std::make_unique<ems::EmsEnvironment>(trace, std::move(forecast),
                                                 0)});
    }
  }

  const std::size_t stride = ems::EmsEnvironment::kDefaultMeterInterval;
  std::array<double, ems::EmsEnvironment::kStateDim> state{};
  std::vector<int> ws_actions, legacy_actions;

  // Warm-up pass sizes every agent's arena so the timed pass measures the
  // steady state the EMS loop actually runs in.
  for (const auto& dev : devices) {
    dev.env->state_into(0, state);
    (void)dev.agent->act_greedy(state);
  }

  const std::uint64_t allocs_before = nn::Workspace::total_allocations();
  util::Stopwatch ws_watch;
  for (const auto& dev : devices) {
    for (std::size_t t = 0; t < dev.env->length(); t += stride) {
      dev.env->state_into(t, state);
      ws_actions.push_back(dev.agent->act_greedy(state));
    }
  }
  const double ws_seconds = ws_watch.elapsed_seconds();
  const std::uint64_t steady_allocs =
      nn::Workspace::total_allocations() - allocs_before;

  util::Stopwatch legacy_watch;
  for (const auto& dev : devices) {
    for (std::size_t t = 0; t < dev.env->length(); t += stride) {
      legacy_actions.push_back(
          legacy_act_greedy(dev.agent->network(), *dev.env, t));
    }
  }
  const double legacy_seconds = legacy_watch.elapsed_seconds();

  if (ws_actions != legacy_actions) {
    std::fprintf(stderr,
                 "FATAL: workspace and legacy paths disagree on actions\n");
    return 1;
  }

  const auto decisions = static_cast<double>(ws_actions.size());
  const double ws_rate = decisions / ws_seconds;
  const double legacy_rate = decisions / legacy_seconds;
  const double speedup = legacy_seconds / ws_seconds;

  util::TextTable table({"path", "decisions", "seconds", "decisions/sec"});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f", decisions);
  table.add_row({"workspace", buf, std::to_string(ws_seconds),
                 std::to_string(ws_rate)});
  table.add_row({"legacy", buf, std::to_string(legacy_seconds),
                 std::to_string(legacy_rate)});
  table.print();
  std::printf("\nspeedup: %.2fx; steady-state arena allocations: %llu\n",
              speedup, static_cast<unsigned long long>(steady_allocs));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"ems_throughput\",\n"
               "  \"homes\": %zu,\n"
               "  \"devices\": %zu,\n"
               "  \"minutes\": %zu,\n"
               "  \"meter_interval\": %zu,\n"
               "  \"decisions\": %zu,\n"
               "  \"workspace_seconds\": %.6f,\n"
               "  \"workspace_decisions_per_sec\": %.1f,\n"
               "  \"legacy_seconds\": %.6f,\n"
               "  \"legacy_decisions_per_sec\": %.1f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"steady_state_workspace_allocs\": %llu,\n"
               "  \"nn_workspace_allocs\": %llu,\n"
               "  \"nn_scratch_bytes\": %llu\n"
               "}\n",
               scenario.traces.size(), devices.size(), minutes, stride,
               ws_actions.size(), ws_seconds, ws_rate, legacy_seconds,
               legacy_rate, speedup,
               static_cast<unsigned long long>(steady_allocs),
               static_cast<unsigned long long>(
                   nn::Workspace::total_allocations()),
               static_cast<unsigned long long>(nn::Workspace::total_bytes()));
  std::fclose(f);
  std::printf("baseline written to %s\n", out_path.c_str());

  bench::dump_metrics("ems_throughput");
  return 0;
}
