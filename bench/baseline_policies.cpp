// Non-learning baselines vs the learned PFDRL policy: oracle (upper
// bound), reactive meter rule, night timer, and the passive no-EMS
// baseline. Brackets how much of the headroom the DQN actually captures.
#include "common.hpp"

#include "core/pipeline.hpp"
#include "ems/policies.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Baseline policies vs learned PFDRL",
      "(extension) the DQN should approach the oracle and clear every "
      "heuristic");

  const auto scenario = bench::bench_scenario(/*days=*/6);
  const std::size_t day = data::kMinutesPerDay;

  // Train PFDRL once.
  auto cfg = sim::bench_pipeline(core::EmsMethod::kPfdrl);
  core::EmsPipeline pipeline(scenario.traces, cfg);
  pipeline.train_forecasters(0, 2 * day);
  pipeline.train_ems(2 * day, 5 * day);
  const auto learned = pipeline.evaluate(5 * day, 6 * day);

  // Score the fixed policies over the same evaluation day.
  struct Row {
    const char* label;
    ems::EpisodeResult result;
  };
  std::vector<Row> rows = {{"oracle (upper bound)", {}},
                           {"reactive meter rule", {}},
                           {"night timer (0-6h)", {}},
                           {"passive (no EMS)", {}},
                           {"PFDRL (learned)", {}}};
  for (const auto& r : learned) rows[4].result.merge(r);

  for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
    for (const auto& dev : scenario.traces[h].devices) {
      if (dev.spec.protected_device) continue;
      ems::EmsEnvironment env(
          dev, std::vector<double>(day, dev.spec.standby_watts), 5 * day,
          cfg.meter_interval_minutes);
      rows[0].result.merge(
          ems::score_actions(env, ems::oracle_actions(env)));
      rows[1].result.merge(
          ems::score_actions(env, ems::reactive_actions(env)));
      rows[2].result.merge(
          ems::score_actions(env, ems::timer_actions(env, 0, 6)));
      rows[3].result.merge(
          ems::score_actions(env, ems::passive_actions(env)));
    }
  }

  util::TextTable table({"policy", "net saved frac", "gross frac",
                         "violations/client", "reward/step"});
  const auto homes = static_cast<double>(scenario.num_homes());
  for (const auto& row : rows) {
    const auto& r = row.result;
    table.add_row(
        {row.label, util::fmt_double(r.net_saved_fraction(), 3),
         util::fmt_double(r.saved_fraction(), 3),
         util::fmt_double(static_cast<double>(r.comfort_violations) / homes,
                          1),
         util::fmt_double(r.total_reward / static_cast<double>(r.steps), 2)});
  }
  table.print();
  return 0;
}
