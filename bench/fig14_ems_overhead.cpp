// Figure 14 — energy-management time overhead (training + testing) for
// the five methods.
// Paper: PFDRL < FL ≈ Cloud ≈ Local < FRL — PFDRL broadcasts only α of
// the DQN layers, so its round cost undercuts FRL's full-model exchange.
// Wall-clock compute is nearly identical across methods on one machine;
// the decisive difference is the broadcast volume, which we report
// alongside (simulated transfer seconds on the modeled home LAN).
#include "common.hpp"

#include "core/pipeline.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 14: EMS time overhead per method",
      "PFDRL < FL ~= Cloud ~= Local < FRL (driven by broadcast volume)");

  const auto scenario = bench::bench_scenario(/*days=*/4);
  const std::size_t day = data::kMinutesPerDay;

  const core::EmsMethod methods[] = {core::EmsMethod::kLocal,
                                     core::EmsMethod::kCloud,
                                     core::EmsMethod::kFl,
                                     core::EmsMethod::kFrl,
                                     core::EmsMethod::kPfdrl};

  util::TextTable table({"method", "train s", "test s", "DRL MiB",
                         "simulated transfer s", "total (train+transfer) s"});
  for (auto method : methods) {
    auto cfg = sim::bench_pipeline(method);
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);

    util::Stopwatch train_watch;
    pipeline.train_ems(2 * day, 3 * day);
    const double train_s = train_watch.elapsed_seconds();

    util::Stopwatch test_watch;
    const auto results = pipeline.evaluate(3 * day, 4 * day);
    const double test_s = test_watch.elapsed_seconds();
    (void)results;

    const auto drl = pipeline.drl_comm_stats();
    const double transfer_s = drl.simulated_transfer_seconds;
    table.add_row(
        {core::ems_method_name(method), util::fmt_double(train_s, 2),
         util::fmt_double(test_s, 2),
         util::fmt_double(
             static_cast<double>(drl.bytes_on_wire) / (1024.0 * 1024.0), 2),
         util::fmt_double(transfer_s, 3),
         util::fmt_double(train_s + transfer_s, 2)});
  }
  table.print();
  bench::dump_metrics("fig14_ems_overhead");
  return 0;
}
