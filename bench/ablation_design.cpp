// Ablations of design choices DESIGN.md calls out:
//   A. meter reporting interval (how stale real-time readings are),
//   B. log-scale vs linear watt encoding for the forecasters,
//   C. broadcast topology (full mesh vs star vs ring) for DFL accuracy
//      and wire cost,
//   D. base-layer direction: share the FIRST alpha layers (PFDRL) vs the
//      LAST alpha layers (personalize the bottom instead).
#include "common.hpp"

#include "core/layer_split.hpp"
#include "core/pipeline.hpp"
#include "fl/aggregate.hpp"
#include "fl/dfl.hpp"

using namespace pfdrl;

namespace {

void ablation_meter_interval(const sim::Scenario& scenario) {
  const std::size_t day = data::kMinutesPerDay;
  util::TextTable table({"meter interval (min)", "net saved frac",
                         "violations/client"});
  for (std::size_t interval : {1u, 5u, 15u, 30u}) {
    auto cfg = sim::bench_pipeline(core::EmsMethod::kPfdrl);
    cfg.meter_interval_minutes = interval;
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);
    pipeline.train_ems(2 * day, 4 * day);
    const auto results = pipeline.evaluate(4 * day, 5 * day);
    double net = 0.0, standby = 0.0, violations = 0.0;
    for (const auto& r : results) {
      net += std::max(0.0, r.net_saved_kwh());
      standby += r.standby_kwh;
      violations += static_cast<double>(r.comfort_violations);
    }
    table.add_row({std::to_string(interval),
                   util::fmt_double(net / standby, 3),
                   util::fmt_double(
                       violations / static_cast<double>(results.size()), 1)});
  }
  table.print(
      "A. meter staleness: with event-based interruption billing (the user "
      "overrides\nonce per interruption), the interval shifts *when* "
      "savings/violations land, not\nhow many — near-flat is the expected "
      "outcome:");
  std::printf("\n");
}

void ablation_log_scale(const sim::Scenario& scenario) {
  const std::size_t day = data::kMinutesPerDay;
  util::TextTable table({"encoding", "BP accuracy"});
  for (bool log_scale : {true, false}) {
    fl::DflConfig cfg;
    cfg.method = forecast::Method::kBp;
    cfg.window.window = 16;
    cfg.window.log_scale = log_scale;
    fl::DflTrainer trainer(scenario.traces, cfg);
    trainer.run(0, 3 * day);
    table.add_row({log_scale ? "log1p (default)" : "linear",
                   util::fmt_percent(
                       trainer.mean_test_accuracy(3 * day, 4 * day))});
  }
  table.print(
      "B. watt encoding (relative accuracy metric needs the log scale):");
  std::printf("\n");
}

void ablation_recurrent_cell(const sim::Scenario& scenario) {
  const std::size_t day = data::kMinutesPerDay;
  util::TextTable table({"cell", "accuracy", "parameters"});
  for (auto method : {forecast::Method::kLstm, forecast::Method::kGru}) {
    fl::DflConfig cfg;
    cfg.method = method;
    cfg.window.window = 16;
    fl::DflTrainer trainer(scenario.traces, cfg);
    trainer.run(0, 3 * day);
    table.add_row({forecast::method_name(method),
                   util::fmt_percent(
                       trainer.mean_test_accuracy(3 * day, 4 * day)),
                   std::to_string(
                       trainer.forecaster(0, 0).parameters().size())});
  }
  table.print("E. recurrent cell (GRU extension vs the paper's LSTM):");
  std::printf("\n");
}

void ablation_topology(const sim::Scenario& scenario) {
  const std::size_t day = data::kMinutesPerDay;
  util::TextTable table(
      {"topology", "accuracy", "messages delivered", "MiB on wire"});
  struct Case {
    const char* label;
    fl::AggregationMode mode;
  };
  for (const auto& c :
       {Case{"full mesh (DFL)", fl::AggregationMode::kDecentralized},
        Case{"star via hub (FL)", fl::AggregationMode::kCentralized},
        Case{"local only", fl::AggregationMode::kNone}}) {
    fl::DflConfig cfg;
    cfg.method = forecast::Method::kBp;
    cfg.window.window = 16;
    cfg.aggregation = c.mode;
    fl::DflTrainer trainer(scenario.traces, cfg);
    trainer.run(0, 3 * day);
    const auto comm = trainer.comm_stats();
    table.add_row({c.label,
                   util::fmt_percent(
                       trainer.mean_test_accuracy(3 * day, 4 * day)),
                   std::to_string(comm.messages_delivered),
                   util::fmt_double(static_cast<double>(comm.bytes_on_wire) /
                                        (1024.0 * 1024.0),
                                    1)});
  }
  table.print("C. aggregation topology (same math, different wire cost):");
  std::printf("\n");
}

/// Share the LAST `alpha` layers instead of the first ones: FedPer-style
/// splits argue lower layers are general and upper layers personal; this
/// ablation checks the claim on the EMS task.
void ablation_split_direction(const sim::Scenario& scenario) {
  const std::size_t day = data::kMinutesPerDay;
  util::TextTable table({"shared slice", "net saved frac", "reward/step"});

  for (bool share_bottom : {true, false}) {
    auto cfg = sim::bench_pipeline(core::EmsMethod::kFl);  // no built-in fed
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);

    // Manual federation every gamma: average either the first or the
    // last `alpha` layers of homologous DQNs.
    const std::size_t alpha = 6;
    const auto federate = [&] {
      // Group actionable agents by device type.
      std::map<std::uint32_t, std::vector<nn::Mlp*>> groups;
      std::map<std::uint32_t, std::vector<rl::DqnAgent*>> agents;
      for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
        for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
          if (scenario.traces[h].devices[d].spec.protected_device) continue;
          auto& agent = const_cast<rl::DqnAgent&>(pipeline.agent(h, d));
          const auto type = static_cast<std::uint32_t>(
              scenario.traces[h].devices[d].spec.type);
          groups[type].push_back(&agent.network());
          agents[type].push_back(&agent);
        }
      }
      for (auto& [type, nets] : groups) {
        if (nets.size() < 2) continue;
        nn::Mlp& ref = *nets.front();
        const std::size_t lo =
            share_bottom ? 0 : ref.layer_offset(ref.num_layers() - alpha);
        const std::size_t hi = share_bottom
                                   ? core::base_prefix_params(ref, alpha)
                                   : ref.parameter_count();
        std::vector<std::vector<double>> slices;
        for (nn::Mlp* net : nets) {
          const auto p = net->parameters();
          slices.emplace_back(p.begin() + lo, p.begin() + hi);
        }
        std::vector<std::span<const double>> views(slices.begin(),
                                                   slices.end());
        std::vector<double> avg(hi - lo, 0.0);
        fl::fedavg_prefix(views, avg.size(), avg);
        for (std::size_t k = 0; k < nets.size(); ++k) {
          auto p = nets[k]->parameters();
          std::copy(avg.begin(), avg.end(), p.begin() + lo);
          agents[type][k]->notify_external_parameter_update();
        }
      }
    };

    const std::size_t gamma_minutes = 12 * 60;
    for (std::size_t b = 2 * day; b < 4 * day; b += gamma_minutes) {
      pipeline.train_ems(b, b + gamma_minutes);
      federate();
    }

    const auto results = pipeline.evaluate(4 * day, 5 * day);
    double net = 0.0, standby = 0.0, reward = 0.0;
    std::size_t steps = 0;
    for (const auto& r : results) {
      net += std::max(0.0, r.net_saved_kwh());
      standby += r.standby_kwh;
      reward += r.total_reward;
      steps += r.steps;
    }
    table.add_row({share_bottom ? "first 6 layers (PFDRL)"
                                : "last 6 layers (inverted)",
                   util::fmt_double(net / standby, 3),
                   util::fmt_double(reward / static_cast<double>(steps), 2)});
  }
  table.print("D. which layers to share (base prefix vs inverted suffix):");
}

}  // namespace

int main() {
  bench::print_figure_header("Design ablations",
                             "choices called out in DESIGN.md section 5");
  const auto scenario = bench::bench_scenario(/*days=*/5);
  ablation_meter_interval(scenario);
  ablation_log_scale(scenario);
  ablation_topology(scenario);
  ablation_split_direction(scenario);
  ablation_recurrent_cell(scenario);
  return 0;
}
