// Figure 3 — DFL load-forecasting accuracy vs broadcast frequency β.
// Paper: β = 6 and 12 hours give the best accuracy; β = 12 is chosen for
// communication efficiency.
#include "common.hpp"

#include "fl/dfl.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 3: DFL forecast accuracy vs broadcast frequency beta (hours)",
      "beta = 6-12 h best; very frequent broadcasting hurts accuracy");

  const auto scenario = bench::bench_scenario(/*days=*/4);
  const std::size_t day = data::kMinutesPerDay;

  util::TextTable table(
      {"beta (h)", "accuracy", "broadcast msgs", "MiB on wire"});
  for (double beta : {0.1, 0.5, 1.0, 2.0, 6.0, 12.0, 24.0}) {
    fl::DflConfig cfg;
    cfg.method = forecast::Method::kLstm;
    cfg.window.window = 16;
    cfg.broadcast_period_hours = beta;
    cfg.aggregation = fl::AggregationMode::kDecentralized;
    fl::DflTrainer trainer(scenario.traces, cfg);
    trainer.run(0, 3 * day);
    const double acc = trainer.mean_test_accuracy(3 * day, 4 * day);
    const auto comm = trainer.comm_stats();
    table.add_row({util::fmt_double(beta, 1), util::fmt_percent(acc),
                   std::to_string(comm.messages_sent),
                   util::fmt_double(static_cast<double>(comm.bytes_on_wire) /
                                        (1024.0 * 1024.0),
                                    1)});
  }
  table.print();
  return 0;
}
