// DFL train-round throughput — the recorded perf baseline for the
// vectorizable-kernel work.
//
// The DFL forecaster retrain is the computation overhead the paper
// benchmarks in fig. 13 and the dominant cost of a PFDRL run (the act
// path is ~25 µs/decision; one LSTM round over a broadcast period costs
// milliseconds per device). This bench replays the per-round retrain
// loop exactly as fl::DflTrainer issues it — one train() call per
// simulated broadcast round over that round's newly recorded minutes —
// for the LSTM and GRU forecasters, and reports training windows per
// second (windows = sequence samples, weighted by epochs, counted from
// the same data::make_sequences the trainer uses).
//
// Determinism guard: each method trains a second, identically seeded
// forecaster and the final parameter vectors must match bitwise — the
// strip-mined kernels are fixed-order reductions, so run-to-run drift
// here is a bug, not noise.
//
// Writes a JSON summary (default BENCH_dfl.json in the CWD; the
// committed baseline at the repo root carries before/after sections —
// see docs/performance.md). Flags: --days N, --rounds R, --round-minutes
// M, --hidden H, --out PATH.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "data/dataset.hpp"
#include "forecast/forecaster.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace pfdrl;

struct MethodResult {
  std::string name;
  std::size_t windows = 0;  // epoch-weighted training windows processed
  double seconds = 0.0;
  bool deterministic = false;

  [[nodiscard]] double windows_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

MethodResult run_method(forecast::Method method, const data::DeviceTrace& trace,
                        std::size_t rounds, std::size_t round_minutes,
                        std::size_t total_minutes) {
  MethodResult result;
  result.name = forecast::method_name(method);

  data::WindowConfig window;  // production defaults (16-step, calendar)
  auto model = forecast::make_forecaster(method, window, 7);
  auto twin = forecast::make_forecaster(method, window, 7);
  const forecast::TrainConfig resolved =
      forecast::resolve_train_config(method, forecast::TrainConfig{});

  // Warm-up round: sizes the gather buffers and gradient arenas so the
  // timed rounds measure the steady state the DFL loop runs in.
  {
    util::Rng rng = util::Rng(1).fork(9999);
    model->train(trace, 0, std::min(round_minutes, total_minutes),
                 forecast::TrainConfig{}, rng);
  }

  util::Stopwatch watch;
  double seconds = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);
    // Same per-round RNG forking scheme as fl::DflTrainer, so the twin
    // run below sees identical shuffles.
    util::Rng rng = util::Rng(1).fork(r * 10000);
    watch.reset();
    model->train(trace, begin, end, forecast::TrainConfig{}, rng);
    seconds += watch.elapsed_seconds();

    // Window accounting mirrors the trainer's data path: count what
    // make_sequences actually yields for this round at the resolved
    // training stride, once per epoch.
    data::WindowConfig wc = window;
    wc.stride = resolved.stride;
    const auto set = data::make_sequences(trace, wc, begin, end);
    result.windows += set.size() * resolved.epochs;
  }
  result.seconds = seconds;

  // Bitwise run-to-run determinism: replay the same rounds into the twin.
  {
    util::Rng warm = util::Rng(1).fork(9999);
    twin->train(trace, 0, std::min(round_minutes, total_minutes),
                forecast::TrainConfig{}, warm);
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);
    util::Rng rng = util::Rng(1).fork(r * 10000);
    twin->train(trace, begin, end, forecast::TrainConfig{}, rng);
  }
  const auto a = model->parameters();
  const auto b = twin->parameters();
  result.deterministic = a.size() == b.size();
  for (std::size_t i = 0; result.deterministic && i < a.size(); ++i) {
    if (a[i] != b[i]) result.deterministic = false;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t days = 2;
  std::size_t rounds = 6;
  std::size_t round_minutes = 360;  // one 6-hour broadcast period
  std::string out_path = "BENCH_dfl.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--round-minutes") == 0 && i + 1 < argc) {
      round_minutes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--days N] [--rounds R] [--round-minutes M] [--out P]\n",
          argv[0]);
      return 2;
    }
  }

  bench::print_figure_header(
      "DFL train-round throughput (perf baseline)",
      "per-round LSTM/GRU retraining is the run's computation overhead "
      "(fig. 13)");

  const sim::Scenario scenario = bench::bench_scenario(days, 1);
  const std::size_t total_minutes = scenario.minutes();
  const data::DeviceTrace* trace = &scenario.traces[0].devices[0];
  for (const auto& d : scenario.traces[0].devices) {
    if (!d.spec.protected_device) {
      trace = &d;
      break;
    }
  }

  const MethodResult lstm = run_method(forecast::Method::kLstm, *trace, rounds,
                                       round_minutes, total_minutes);
  const MethodResult gru = run_method(forecast::Method::kGru, *trace, rounds,
                                      round_minutes, total_minutes);

  util::TextTable table(
      {"method", "windows", "seconds", "windows/sec", "deterministic"});
  for (const auto& r : {lstm, gru}) {
    table.add_row({r.name, std::to_string(r.windows),
                   std::to_string(r.seconds),
                   std::to_string(r.windows_per_sec()),
                   r.deterministic ? "yes" : "NO"});
  }
  table.print();

  if (!lstm.deterministic || !gru.deterministic) {
    std::fprintf(stderr,
                 "FATAL: repeated identically seeded training runs diverged\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"dfl_throughput\",\n"
               "  \"days\": %zu,\n"
               "  \"rounds\": %zu,\n"
               "  \"round_minutes\": %zu,\n"
               "  \"lstm_windows\": %zu,\n"
               "  \"lstm_seconds\": %.6f,\n"
               "  \"lstm_windows_per_sec\": %.1f,\n"
               "  \"gru_windows\": %zu,\n"
               "  \"gru_seconds\": %.6f,\n"
               "  \"gru_windows_per_sec\": %.1f,\n"
               "  \"deterministic\": %s\n"
               "}\n",
               days, rounds, round_minutes, lstm.windows, lstm.seconds,
               lstm.windows_per_sec(), gru.windows, gru.seconds,
               gru.windows_per_sec(),
               lstm.deterministic && gru.deterministic ? "true" : "false");
  std::fclose(f);
  std::printf("\nbaseline written to %s\n", out_path.c_str());

  bench::dump_metrics("dfl_throughput");
  return 0;
}
