// DFL train-round throughput — the recorded perf baseline for the
// vectorizable-kernel work.
//
// The DFL forecaster retrain is the computation overhead the paper
// benchmarks in fig. 13 and the dominant cost of a PFDRL run (the act
// path is ~25 µs/decision; one LSTM round over a broadcast period costs
// milliseconds per device). This bench replays the per-round retrain
// loop exactly as fl::DflTrainer issues it — one train() call per
// simulated broadcast round over that round's newly recorded minutes —
// for the LSTM and GRU forecasters, and reports training windows per
// second (windows = sequence samples, weighted by epochs, counted from
// the same data::make_sequences the trainer uses).
//
// Determinism guard: each method trains a second, identically seeded
// forecaster and the final parameter vectors must match bitwise — the
// strip-mined kernels are fixed-order reductions, so run-to-run drift
// here is a bug, not noise.
//
// Fused-vs-per-home column (docs/fused_training.md): for each home
// count in --fuse-homes, N virtual homes train over the same recorded
// trace — once through the legacy per-home loop, once through one
// forecast::FusedForecastTrainer group — and the column reports both
// rates plus the speedup. The per-home cost is identical across homes
// by construction, which isolates the fusion effect; the two paths'
// final parameters must match bitwise per home (the fused determinism
// contract, re-checked end-to-end at every sweep point).
//
// Pool-worker sweep (docs/scaling.md#pipelined-rounds): the recurrent
// kernels and the fused trainer fan out over util::ThreadPool, whose
// size is fixed once per process (PFDRL_POOL_WORKERS). The sweep
// therefore re-executes this binary once per requested worker count in
// a child mode that emits one JSON line — lstm/gru/fused rates plus the
// final parameter hashes — and the parent asserts every hash is
// identical across worker counts: the fixed-order-reduction determinism
// contract, measured instead of assumed.
//
// Writes a JSON summary (default BENCH_dfl.json in the CWD; the
// committed baseline at the repo root carries before/after sections —
// see docs/performance.md). Flags: --days N, --rounds R, --round-minutes
// M, --fuse-homes LIST, --pool-workers CSV, --out PATH (and --emit PATH,
// the internal child mode).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "data/dataset.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/fused.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace pfdrl;

struct MethodResult {
  std::string name;
  std::size_t windows = 0;  // epoch-weighted training windows processed
  double seconds = 0.0;
  bool deterministic = false;
  std::uint64_t hash = 0;  // fnv1a over the final parameter vector

  [[nodiscard]] double windows_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

MethodResult run_method(forecast::Method method, const data::DeviceTrace& trace,
                        std::size_t rounds, std::size_t round_minutes,
                        std::size_t total_minutes) {
  MethodResult result;
  result.name = forecast::method_name(method);

  data::WindowConfig window;  // production defaults (16-step, calendar)
  auto model = forecast::make_forecaster(method, window, 7);
  auto twin = forecast::make_forecaster(method, window, 7);
  const forecast::TrainConfig resolved =
      forecast::resolve_train_config(method, forecast::TrainConfig{});

  // Warm-up round: sizes the gather buffers and gradient arenas so the
  // timed rounds measure the steady state the DFL loop runs in.
  {
    util::Rng rng = util::Rng(1).fork(9999);
    model->train(trace, 0, std::min(round_minutes, total_minutes),
                 forecast::TrainConfig{}, rng);
  }

  util::Stopwatch watch;
  double seconds = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);
    // Same per-round RNG forking scheme as fl::DflTrainer, so the twin
    // run below sees identical shuffles.
    util::Rng rng = util::Rng(1).fork(r * 10000);
    watch.reset();
    model->train(trace, begin, end, forecast::TrainConfig{}, rng);
    seconds += watch.elapsed_seconds();

    // Window accounting mirrors the trainer's data path: count what
    // make_sequences actually yields for this round at the resolved
    // training stride, once per epoch.
    data::WindowConfig wc = window;
    wc.stride = resolved.stride;
    const auto set = data::make_sequences(trace, wc, begin, end);
    result.windows += set.size() * resolved.epochs;
  }
  result.seconds = seconds;

  // Bitwise run-to-run determinism: replay the same rounds into the twin.
  {
    util::Rng warm = util::Rng(1).fork(9999);
    twin->train(trace, 0, std::min(round_minutes, total_minutes),
                forecast::TrainConfig{}, warm);
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);
    util::Rng rng = util::Rng(1).fork(r * 10000);
    twin->train(trace, begin, end, forecast::TrainConfig{}, rng);
  }
  const auto a = model->parameters();
  const auto b = twin->parameters();
  result.deterministic = a.size() == b.size();
  for (std::size_t i = 0; result.deterministic && i < a.size(); ++i) {
    if (a[i] != b[i]) result.deterministic = false;
  }
  result.hash = bench::fnv1a_params(a);
  return result;
}

struct FusedPoint {
  std::string method;
  std::size_t homes = 0;
  std::size_t windows = 0;  // epoch-weighted, per path (paths are equal)
  double per_home_seconds = 0.0;
  double fused_seconds = 0.0;
  bool bitwise_match = false;

  [[nodiscard]] double per_home_windows_per_sec() const noexcept {
    return per_home_seconds > 0.0
               ? static_cast<double>(windows) / per_home_seconds
               : 0.0;
  }
  [[nodiscard]] double fused_windows_per_sec() const noexcept {
    return fused_seconds > 0.0 ? static_cast<double>(windows) / fused_seconds
                               : 0.0;
  }
  [[nodiscard]] double speedup() const noexcept {
    return fused_seconds > 0.0 ? per_home_seconds / fused_seconds : 0.0;
  }
};

/// One fused-vs-per-home sweep point: `homes` LSTM forecasters (distinct
/// seeds, same architecture) retrain over the same rounds, legacy loop
/// vs one maximal fused group. Short epochs keep the big points quick;
/// both paths and the window accounting use the same resolved config.
FusedPoint run_fused_point(forecast::Method method,
                           const data::DeviceTrace& trace, std::size_t homes,
                           std::size_t rounds, std::size_t round_minutes,
                           std::size_t total_minutes,
                           std::uint64_t* params_hash = nullptr) {
  FusedPoint point;
  point.method = forecast::method_name(method);
  point.homes = homes;

  forecast::TrainConfig sweep;
  sweep.epochs = 2;  // explicit values win over the per-method defaults
  const forecast::TrainConfig resolved =
      forecast::resolve_train_config(method, sweep);

  data::WindowConfig window;  // production defaults (16-step, calendar)
  std::vector<std::unique_ptr<forecast::Forecaster>> legacy;
  std::vector<std::unique_ptr<forecast::Forecaster>> fused;
  for (std::size_t h = 0; h < homes; ++h) {
    legacy.push_back(forecast::make_forecaster(method, window, 7 + h));
    fused.push_back(forecast::make_forecaster(method, window, 7 + h));
  }

  // Per-job RNG forks mirror fl::DflTrainer's (round, job) scheme; both
  // paths consume identical streams, so the final parameters must match
  // bitwise per home.
  const auto job_rng = [](std::size_t r, std::size_t h) {
    return util::Rng(1).fork(r * 10000 + h * 100);
  };

  forecast::FusedForecastTrainer trainer;
  const auto fused_round = [&](std::size_t r, std::size_t begin,
                               std::size_t end) {
    std::vector<util::Rng> rngs;
    rngs.reserve(homes);
    std::vector<forecast::FusedTrainJob> jobs;
    jobs.reserve(homes);
    for (std::size_t h = 0; h < homes; ++h) {
      rngs.push_back(job_rng(r, h));
      jobs.push_back({fused[h].get(), &trace, &rngs.back(), 0.0});
    }
    if (!trainer.train(jobs, begin, end, sweep)) {
      std::fprintf(stderr, "FATAL: fused trainer refused a uniform group\n");
      std::exit(1);
    }
  };

  // Warm-up round on both paths: sizes the slabs and gradient arenas so
  // the timed rounds measure the steady state (and keeps the two paths'
  // total training identical for the bitwise check).
  const std::size_t warm_end = std::min(round_minutes, total_minutes);
  for (std::size_t h = 0; h < homes; ++h) {
    util::Rng rng = util::Rng(1).fork(990000 + h);
    legacy[h]->train(trace, 0, warm_end, sweep, rng);
  }
  {
    std::vector<util::Rng> rngs;
    rngs.reserve(homes);
    std::vector<forecast::FusedTrainJob> jobs;
    jobs.reserve(homes);
    for (std::size_t h = 0; h < homes; ++h) {
      rngs.push_back(util::Rng(1).fork(990000 + h));
      jobs.push_back({fused[h].get(), &trace, &rngs.back(), 0.0});
    }
    if (!trainer.train(jobs, 0, warm_end, sweep)) {
      std::fprintf(stderr, "FATAL: fused trainer refused a uniform group\n");
      std::exit(1);
    }
  }

  util::Stopwatch watch;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);

    watch.reset();
    for (std::size_t h = 0; h < homes; ++h) {
      util::Rng rng = job_rng(r, h);
      legacy[h]->train(trace, begin, end, sweep, rng);
    }
    point.per_home_seconds += watch.elapsed_seconds();

    watch.reset();
    fused_round(r, begin, end);
    point.fused_seconds += watch.elapsed_seconds();

    data::WindowConfig wc = window;
    wc.stride = resolved.stride;
    const auto set = data::make_sequences(trace, wc, begin, end);
    point.windows += set.size() * resolved.epochs * homes;
  }

  point.bitwise_match = true;
  for (std::size_t h = 0; h < homes && point.bitwise_match; ++h) {
    const auto a = legacy[h]->parameters();
    const auto b = fused[h]->parameters();
    if (a.size() != b.size()) point.bitwise_match = false;
    for (std::size_t i = 0; point.bitwise_match && i < a.size(); ++i) {
      if (a[i] != b[i]) point.bitwise_match = false;
    }
  }
  if (params_hash != nullptr) {
    // One fixed-order hash across every fused home — the fingerprint the
    // pool-worker sweep compares across worker counts.
    std::vector<double> all;
    for (std::size_t h = 0; h < homes; ++h) {
      const auto p = fused[h]->parameters();
      all.insert(all.end(), p.begin(), p.end());
    }
    *params_hash = bench::fnv1a_params(all);
  }
  return point;
}

std::vector<std::size_t> parse_csv_sizes(const char* s) {
  std::vector<std::size_t> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(std::stoul(cur));
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

/// One pool-worker sweep sample, as parsed back from a child's line.
struct PoolPoint {
  std::size_t pool_workers = 0;
  double lstm_rate = 0.0;
  double gru_rate = 0.0;
  double fused_rate = 0.0;
  std::size_t fused_homes = 0;
  std::string lstm_hash;
  std::string gru_hash;
  std::string fused_hash;
  bool deterministic = false;
};

bool parse_pool_line(const std::string& line, PoolPoint* out) {
  const auto find_num = [&](const char* key, double* value) {
    const char* at = std::strstr(line.c_str(), key);
    return at != nullptr &&
           std::sscanf(at + std::strlen(key), "%lf", value) == 1;
  };
  const auto find_hash = [&](const char* key, std::string* value) {
    const char* at = std::strstr(line.c_str(), key);
    if (at == nullptr) return false;
    at += std::strlen(key);
    value->assign(at, std::strcspn(at, "\""));
    return true;
  };
  double workers = 0.0;
  double homes = 0.0;
  if (!find_num("\"pool_workers\": ", &workers) ||
      !find_num("\"fused_homes\": ", &homes) ||
      !find_num("\"lstm_windows_per_sec\": ", &out->lstm_rate) ||
      !find_num("\"gru_windows_per_sec\": ", &out->gru_rate) ||
      !find_num("\"fused_windows_per_sec\": ", &out->fused_rate) ||
      !find_hash("\"lstm_hash\": \"", &out->lstm_hash) ||
      !find_hash("\"gru_hash\": \"", &out->gru_hash) ||
      !find_hash("\"fused_hash\": \"", &out->fused_hash)) {
    return false;
  }
  out->pool_workers = static_cast<std::size_t>(workers);
  out->fused_homes = static_cast<std::size_t>(homes);
  out->deterministic =
      std::strstr(line.c_str(), "\"deterministic\": true") != nullptr;
  return true;
}

/// Child mode: rerun the lstm/gru rounds and one fused group at this
/// process's pool size and append the sample line to `emit_path`.
int run_pool_child(const data::DeviceTrace& trace, std::size_t rounds,
                   std::size_t round_minutes, std::size_t total_minutes,
                   std::size_t fused_homes, const std::string& emit_path) {
  const MethodResult lstm = run_method(forecast::Method::kLstm, trace, rounds,
                                       round_minutes, total_minutes);
  const MethodResult gru = run_method(forecast::Method::kGru, trace, rounds,
                                      round_minutes, total_minutes);
  std::uint64_t fused_hash = 0;
  FusedPoint fused;
  if (fused_homes >= 2) {
    fused = run_fused_point(forecast::Method::kLstm, trace, fused_homes,
                            rounds, round_minutes, total_minutes, &fused_hash);
  } else {
    fused.bitwise_match = true;
  }
  const bool ok =
      lstm.deterministic && gru.deterministic && fused.bitwise_match;
  std::FILE* f = std::fopen(emit_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", emit_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "    {\"pool_workers\": %zu, "
               "\"lstm_windows_per_sec\": %.1f, "
               "\"lstm_hash\": \"%016" PRIx64 "\", "
               "\"gru_windows_per_sec\": %.1f, "
               "\"gru_hash\": \"%016" PRIx64 "\", "
               "\"fused_homes\": %zu, "
               "\"fused_windows_per_sec\": %.1f, "
               "\"fused_hash\": \"%016" PRIx64 "\", "
               "\"deterministic\": %s},\n",
               util::ThreadPool::global().size(), lstm.windows_per_sec(),
               lstm.hash, gru.windows_per_sec(), gru.hash, fused.homes,
               fused.fused_windows_per_sec(), fused_hash,
               ok ? "true" : "false");
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "FATAL: child training runs diverged\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t days = 2;
  std::size_t rounds = 6;
  std::size_t round_minutes = 360;  // one 6-hour broadcast period
  std::vector<std::size_t> fuse_homes = {20, 100};  // quick default sweep
  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  std::string out_path = "BENCH_dfl.json";
  std::string emit_path;  // non-empty: child mode
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--round-minutes") == 0 && i + 1 < argc) {
      round_minutes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--fuse-homes") == 0 && i + 1 < argc) {
      fuse_homes.clear();
      for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        fuse_homes.push_back(static_cast<std::size_t>(std::atol(tok)));
      }
    } else if (std::strcmp(argv[i], "--pool-workers") == 0 && i + 1 < argc) {
      worker_counts = parse_csv_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--emit") == 0 && i + 1 < argc) {
      emit_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--days N] [--rounds R] [--round-minutes M] "
                   "[--fuse-homes N,N,...] [--pool-workers CSV] [--out P]\n",
                   argv[0]);
      return 2;
    }
  }
  // Smallest requested fused group doubles as the pool sweep's fused
  // sample (the path that actually fans out over the pool).
  std::size_t sweep_fused_homes = 0;
  for (const std::size_t h : fuse_homes) {
    if (h >= 2 && (sweep_fused_homes == 0 || h < sweep_fused_homes)) {
      sweep_fused_homes = h;
    }
  }

  if (emit_path.empty()) {
    bench::print_figure_header(
        "DFL train-round throughput (perf baseline)",
        "per-round LSTM/GRU retraining is the run's computation overhead "
        "(fig. 13)");
  }

  const sim::Scenario scenario = bench::bench_scenario(days, 1);
  const std::size_t total_minutes = scenario.minutes();
  const data::DeviceTrace* trace = &scenario.traces[0].devices[0];
  for (const auto& d : scenario.traces[0].devices) {
    if (!d.spec.protected_device) {
      trace = &d;
      break;
    }
  }

  if (!emit_path.empty()) {
    return run_pool_child(*trace, rounds, round_minutes, total_minutes,
                          sweep_fused_homes, emit_path);
  }

  const MethodResult lstm = run_method(forecast::Method::kLstm, *trace, rounds,
                                       round_minutes, total_minutes);
  const MethodResult gru = run_method(forecast::Method::kGru, *trace, rounds,
                                      round_minutes, total_minutes);

  util::TextTable table(
      {"method", "windows", "seconds", "windows/sec", "deterministic"});
  for (const auto& r : {lstm, gru}) {
    table.add_row({r.name, std::to_string(r.windows),
                   std::to_string(r.seconds),
                   std::to_string(r.windows_per_sec()),
                   r.deterministic ? "yes" : "NO"});
  }
  table.print();

  if (!lstm.deterministic || !gru.deterministic) {
    std::fprintf(stderr,
                 "FATAL: repeated identically seeded training runs diverged\n");
    return 1;
  }

  // Fused-vs-per-home sweep: LSTM (the paper's production method) and
  // GRU (its specialized register tiles land in the same fused engines;
  // the column keeps the GRU fused path benched, not just gate-tested).
  std::vector<FusedPoint> fused_points;
  for (const forecast::Method m :
       {forecast::Method::kLstm, forecast::Method::kGru}) {
    for (const std::size_t homes : fuse_homes) {
      if (homes < 2) continue;
      fused_points.push_back(run_fused_point(m, *trace, homes, rounds,
                                             round_minutes, total_minutes));
    }
  }
  bool fused_match = true;
  if (!fused_points.empty()) {
    std::printf("\nfused vs per-home (one group per round):\n");
    util::TextTable ftable({"method", "homes", "windows", "per-home w/s",
                            "fused w/s", "speedup", "bitwise"});
    for (const auto& p : fused_points) {
      ftable.add_row({p.method, std::to_string(p.homes),
                      std::to_string(p.windows),
                      std::to_string(p.per_home_windows_per_sec()),
                      std::to_string(p.fused_windows_per_sec()),
                      std::to_string(p.speedup()),
                      p.bitwise_match ? "yes" : "NO"});
      fused_match = fused_match && p.bitwise_match;
    }
    ftable.print();
  }
  if (!fused_match) {
    std::fprintf(stderr,
                 "FATAL: fused training diverged from the per-home path\n");
    return 1;
  }

  // Pool-worker sweep: one child process per worker count —
  // PFDRL_POOL_WORKERS is read once at the pool's construction, so
  // honoring it everywhere (kernels and fused trainer included) needs a
  // fresh process per count. Every parameter hash must be identical
  // across counts: the fixed-order reductions make worker count a pure
  // scheduling choice.
  std::vector<std::string> pool_lines;
  std::vector<PoolPoint> pool_points;
  bool pool_hash_consistent = true;
  for (const std::size_t workers : worker_counts) {
    const std::string child_out =
        out_path + ".w" + std::to_string(workers) + ".tmp";
    const std::string cmd =
        "PFDRL_POOL_WORKERS=" + std::to_string(workers) + " '" + argv[0] +
        "' --emit '" + child_out + "' --days " + std::to_string(days) +
        " --rounds " + std::to_string(rounds) + " --round-minutes " +
        std::to_string(round_minutes) + " --fuse-homes " +
        std::to_string(sweep_fused_homes);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "dfl_throughput: child at %zu workers failed (%d)\n",
                   workers, rc);
      return 1;
    }
    std::FILE* cf = std::fopen(child_out.c_str(), "r");
    if (cf == nullptr) {
      std::fprintf(stderr, "dfl_throughput: child wrote no %s\n",
                   child_out.c_str());
      return 1;
    }
    char line[1024];
    while (std::fgets(line, sizeof(line), cf) != nullptr) {
      PoolPoint p;
      if (!parse_pool_line(line, &p)) {
        std::fprintf(stderr, "dfl_throughput: unparsable child line: %s", line);
        std::fclose(cf);
        return 1;
      }
      pool_lines.emplace_back(line);
      pool_points.push_back(std::move(p));
    }
    std::fclose(cf);
    std::remove(child_out.c_str());
  }
  for (const PoolPoint& p : pool_points) {
    const PoolPoint& ref = pool_points.front();
    if (p.lstm_hash != ref.lstm_hash || p.gru_hash != ref.gru_hash ||
        p.fused_hash != ref.fused_hash || !p.deterministic) {
      std::fprintf(stderr,
                   "FATAL: param_hash varies with pool workers (%zu vs %zu)\n",
                   p.pool_workers, ref.pool_workers);
      pool_hash_consistent = false;
    }
  }
  if (!pool_points.empty()) {
    std::printf("\npool-worker sweep (hashes must be identical per column):\n");
    util::TextTable ptable({"workers", "lstm w/s", "gru w/s", "fused w/s",
                            "fused homes", "hash-stable"});
    for (const PoolPoint& p : pool_points) {
      const PoolPoint& ref = pool_points.front();
      const bool stable = p.lstm_hash == ref.lstm_hash &&
                          p.gru_hash == ref.gru_hash &&
                          p.fused_hash == ref.fused_hash;
      ptable.add_row({std::to_string(p.pool_workers),
                      util::fmt_double(p.lstm_rate, 0),
                      util::fmt_double(p.gru_rate, 0),
                      util::fmt_double(p.fused_rate, 0),
                      std::to_string(p.fused_homes), stable ? "yes" : "NO"});
    }
    ptable.print();
  }
  if (!pool_hash_consistent) {
    std::fprintf(stderr, "FATAL: training determinism contract violated\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"dfl_throughput\",\n"
               "  \"days\": %zu,\n"
               "  \"rounds\": %zu,\n"
               "  \"round_minutes\": %zu,\n"
               "  \"lstm_windows\": %zu,\n"
               "  \"lstm_seconds\": %.6f,\n"
               "  \"lstm_windows_per_sec\": %.1f,\n"
               "  \"gru_windows\": %zu,\n"
               "  \"gru_seconds\": %.6f,\n"
               "  \"gru_windows_per_sec\": %.1f,\n"
               "  \"deterministic\": %s,\n"
               "  \"fused_bitwise_match\": %s,\n"
               "  \"pool_hash_consistent\": %s,\n"
               "  \"fused_points\": [",
               days, rounds, round_minutes, lstm.windows, lstm.seconds,
               lstm.windows_per_sec(), gru.windows, gru.seconds,
               gru.windows_per_sec(),
               lstm.deterministic && gru.deterministic ? "true" : "false",
               fused_match ? "true" : "false",
               pool_hash_consistent ? "true" : "false");
  for (std::size_t i = 0; i < fused_points.size(); ++i) {
    const auto& p = fused_points[i];
    std::fprintf(f,
                 "%s\n    {\"method\": \"%s\", \"homes\": %zu,"
                 " \"windows\": %zu,"
                 " \"per_home_windows_per_sec\": %.1f,"
                 " \"fused_windows_per_sec\": %.1f,"
                 " \"speedup\": %.2f, \"bitwise_match\": %s}",
                 i == 0 ? "" : ",", p.method.c_str(), p.homes, p.windows,
                 p.per_home_windows_per_sec(), p.fused_windows_per_sec(),
                 p.speedup(), p.bitwise_match ? "true" : "false");
  }
  std::fprintf(f, "%s],\n  \"pool_sweep\": [\n", fused_points.empty() ? "" : "\n  ");
  for (std::size_t i = 0; i < pool_lines.size(); ++i) {
    std::string line = pool_lines[i];
    if (i + 1 == pool_lines.size()) {
      // Strip the trailing comma the child always emits.
      const std::size_t tail = line.rfind("},");
      if (tail != std::string::npos) line.replace(tail, 2, "}");
    }
    std::fputs(line.c_str(), f);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nbaseline written to %s\n", out_path.c_str());

  bench::dump_metrics("dfl_throughput");
  return 0;
}
