// DFL train-round throughput — the recorded perf baseline for the
// vectorizable-kernel work.
//
// The DFL forecaster retrain is the computation overhead the paper
// benchmarks in fig. 13 and the dominant cost of a PFDRL run (the act
// path is ~25 µs/decision; one LSTM round over a broadcast period costs
// milliseconds per device). This bench replays the per-round retrain
// loop exactly as fl::DflTrainer issues it — one train() call per
// simulated broadcast round over that round's newly recorded minutes —
// for the LSTM and GRU forecasters, and reports training windows per
// second (windows = sequence samples, weighted by epochs, counted from
// the same data::make_sequences the trainer uses).
//
// Determinism guard: each method trains a second, identically seeded
// forecaster and the final parameter vectors must match bitwise — the
// strip-mined kernels are fixed-order reductions, so run-to-run drift
// here is a bug, not noise.
//
// Fused-vs-per-home column (docs/fused_training.md): for each home
// count in --fuse-homes, N virtual homes train over the same recorded
// trace — once through the legacy per-home loop, once through one
// forecast::FusedForecastTrainer group — and the column reports both
// rates plus the speedup. The per-home cost is identical across homes
// by construction, which isolates the fusion effect; the two paths'
// final parameters must match bitwise per home (the fused determinism
// contract, re-checked end-to-end at every sweep point).
//
// Writes a JSON summary (default BENCH_dfl.json in the CWD; the
// committed baseline at the repo root carries before/after sections —
// see docs/performance.md). Flags: --days N, --rounds R, --round-minutes
// M, --fuse-homes LIST, --out PATH.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "data/dataset.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/fused.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace pfdrl;

struct MethodResult {
  std::string name;
  std::size_t windows = 0;  // epoch-weighted training windows processed
  double seconds = 0.0;
  bool deterministic = false;

  [[nodiscard]] double windows_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

MethodResult run_method(forecast::Method method, const data::DeviceTrace& trace,
                        std::size_t rounds, std::size_t round_minutes,
                        std::size_t total_minutes) {
  MethodResult result;
  result.name = forecast::method_name(method);

  data::WindowConfig window;  // production defaults (16-step, calendar)
  auto model = forecast::make_forecaster(method, window, 7);
  auto twin = forecast::make_forecaster(method, window, 7);
  const forecast::TrainConfig resolved =
      forecast::resolve_train_config(method, forecast::TrainConfig{});

  // Warm-up round: sizes the gather buffers and gradient arenas so the
  // timed rounds measure the steady state the DFL loop runs in.
  {
    util::Rng rng = util::Rng(1).fork(9999);
    model->train(trace, 0, std::min(round_minutes, total_minutes),
                 forecast::TrainConfig{}, rng);
  }

  util::Stopwatch watch;
  double seconds = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);
    // Same per-round RNG forking scheme as fl::DflTrainer, so the twin
    // run below sees identical shuffles.
    util::Rng rng = util::Rng(1).fork(r * 10000);
    watch.reset();
    model->train(trace, begin, end, forecast::TrainConfig{}, rng);
    seconds += watch.elapsed_seconds();

    // Window accounting mirrors the trainer's data path: count what
    // make_sequences actually yields for this round at the resolved
    // training stride, once per epoch.
    data::WindowConfig wc = window;
    wc.stride = resolved.stride;
    const auto set = data::make_sequences(trace, wc, begin, end);
    result.windows += set.size() * resolved.epochs;
  }
  result.seconds = seconds;

  // Bitwise run-to-run determinism: replay the same rounds into the twin.
  {
    util::Rng warm = util::Rng(1).fork(9999);
    twin->train(trace, 0, std::min(round_minutes, total_minutes),
                forecast::TrainConfig{}, warm);
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);
    util::Rng rng = util::Rng(1).fork(r * 10000);
    twin->train(trace, begin, end, forecast::TrainConfig{}, rng);
  }
  const auto a = model->parameters();
  const auto b = twin->parameters();
  result.deterministic = a.size() == b.size();
  for (std::size_t i = 0; result.deterministic && i < a.size(); ++i) {
    if (a[i] != b[i]) result.deterministic = false;
  }
  return result;
}

struct FusedPoint {
  std::string method;
  std::size_t homes = 0;
  std::size_t windows = 0;  // epoch-weighted, per path (paths are equal)
  double per_home_seconds = 0.0;
  double fused_seconds = 0.0;
  bool bitwise_match = false;

  [[nodiscard]] double per_home_windows_per_sec() const noexcept {
    return per_home_seconds > 0.0
               ? static_cast<double>(windows) / per_home_seconds
               : 0.0;
  }
  [[nodiscard]] double fused_windows_per_sec() const noexcept {
    return fused_seconds > 0.0 ? static_cast<double>(windows) / fused_seconds
                               : 0.0;
  }
  [[nodiscard]] double speedup() const noexcept {
    return fused_seconds > 0.0 ? per_home_seconds / fused_seconds : 0.0;
  }
};

/// One fused-vs-per-home sweep point: `homes` LSTM forecasters (distinct
/// seeds, same architecture) retrain over the same rounds, legacy loop
/// vs one maximal fused group. Short epochs keep the big points quick;
/// both paths and the window accounting use the same resolved config.
FusedPoint run_fused_point(forecast::Method method,
                           const data::DeviceTrace& trace, std::size_t homes,
                           std::size_t rounds, std::size_t round_minutes,
                           std::size_t total_minutes) {
  FusedPoint point;
  point.method = forecast::method_name(method);
  point.homes = homes;

  forecast::TrainConfig sweep;
  sweep.epochs = 2;  // explicit values win over the per-method defaults
  const forecast::TrainConfig resolved =
      forecast::resolve_train_config(method, sweep);

  data::WindowConfig window;  // production defaults (16-step, calendar)
  std::vector<std::unique_ptr<forecast::Forecaster>> legacy;
  std::vector<std::unique_ptr<forecast::Forecaster>> fused;
  for (std::size_t h = 0; h < homes; ++h) {
    legacy.push_back(forecast::make_forecaster(method, window, 7 + h));
    fused.push_back(forecast::make_forecaster(method, window, 7 + h));
  }

  // Per-job RNG forks mirror fl::DflTrainer's (round, job) scheme; both
  // paths consume identical streams, so the final parameters must match
  // bitwise per home.
  const auto job_rng = [](std::size_t r, std::size_t h) {
    return util::Rng(1).fork(r * 10000 + h * 100);
  };

  forecast::FusedForecastTrainer trainer;
  const auto fused_round = [&](std::size_t r, std::size_t begin,
                               std::size_t end) {
    std::vector<util::Rng> rngs;
    rngs.reserve(homes);
    std::vector<forecast::FusedTrainJob> jobs;
    jobs.reserve(homes);
    for (std::size_t h = 0; h < homes; ++h) {
      rngs.push_back(job_rng(r, h));
      jobs.push_back({fused[h].get(), &trace, &rngs.back(), 0.0});
    }
    if (!trainer.train(jobs, begin, end, sweep)) {
      std::fprintf(stderr, "FATAL: fused trainer refused a uniform group\n");
      std::exit(1);
    }
  };

  // Warm-up round on both paths: sizes the slabs and gradient arenas so
  // the timed rounds measure the steady state (and keeps the two paths'
  // total training identical for the bitwise check).
  const std::size_t warm_end = std::min(round_minutes, total_minutes);
  for (std::size_t h = 0; h < homes; ++h) {
    util::Rng rng = util::Rng(1).fork(990000 + h);
    legacy[h]->train(trace, 0, warm_end, sweep, rng);
  }
  {
    std::vector<util::Rng> rngs;
    rngs.reserve(homes);
    std::vector<forecast::FusedTrainJob> jobs;
    jobs.reserve(homes);
    for (std::size_t h = 0; h < homes; ++h) {
      rngs.push_back(util::Rng(1).fork(990000 + h));
      jobs.push_back({fused[h].get(), &trace, &rngs.back(), 0.0});
    }
    if (!trainer.train(jobs, 0, warm_end, sweep)) {
      std::fprintf(stderr, "FATAL: fused trainer refused a uniform group\n");
      std::exit(1);
    }
  }

  util::Stopwatch watch;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t begin = (r * round_minutes) % total_minutes;
    const std::size_t end = std::min(begin + round_minutes, total_minutes);

    watch.reset();
    for (std::size_t h = 0; h < homes; ++h) {
      util::Rng rng = job_rng(r, h);
      legacy[h]->train(trace, begin, end, sweep, rng);
    }
    point.per_home_seconds += watch.elapsed_seconds();

    watch.reset();
    fused_round(r, begin, end);
    point.fused_seconds += watch.elapsed_seconds();

    data::WindowConfig wc = window;
    wc.stride = resolved.stride;
    const auto set = data::make_sequences(trace, wc, begin, end);
    point.windows += set.size() * resolved.epochs * homes;
  }

  point.bitwise_match = true;
  for (std::size_t h = 0; h < homes && point.bitwise_match; ++h) {
    const auto a = legacy[h]->parameters();
    const auto b = fused[h]->parameters();
    if (a.size() != b.size()) point.bitwise_match = false;
    for (std::size_t i = 0; point.bitwise_match && i < a.size(); ++i) {
      if (a[i] != b[i]) point.bitwise_match = false;
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t days = 2;
  std::size_t rounds = 6;
  std::size_t round_minutes = 360;  // one 6-hour broadcast period
  std::vector<std::size_t> fuse_homes = {20, 100};  // quick default sweep
  std::string out_path = "BENCH_dfl.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--round-minutes") == 0 && i + 1 < argc) {
      round_minutes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--fuse-homes") == 0 && i + 1 < argc) {
      fuse_homes.clear();
      for (const char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        fuse_homes.push_back(static_cast<std::size_t>(std::atol(tok)));
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--days N] [--rounds R] [--round-minutes M] "
                   "[--fuse-homes N,N,...] [--out P]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_figure_header(
      "DFL train-round throughput (perf baseline)",
      "per-round LSTM/GRU retraining is the run's computation overhead "
      "(fig. 13)");

  const sim::Scenario scenario = bench::bench_scenario(days, 1);
  const std::size_t total_minutes = scenario.minutes();
  const data::DeviceTrace* trace = &scenario.traces[0].devices[0];
  for (const auto& d : scenario.traces[0].devices) {
    if (!d.spec.protected_device) {
      trace = &d;
      break;
    }
  }

  const MethodResult lstm = run_method(forecast::Method::kLstm, *trace, rounds,
                                       round_minutes, total_minutes);
  const MethodResult gru = run_method(forecast::Method::kGru, *trace, rounds,
                                      round_minutes, total_minutes);

  util::TextTable table(
      {"method", "windows", "seconds", "windows/sec", "deterministic"});
  for (const auto& r : {lstm, gru}) {
    table.add_row({r.name, std::to_string(r.windows),
                   std::to_string(r.seconds),
                   std::to_string(r.windows_per_sec()),
                   r.deterministic ? "yes" : "NO"});
  }
  table.print();

  if (!lstm.deterministic || !gru.deterministic) {
    std::fprintf(stderr,
                 "FATAL: repeated identically seeded training runs diverged\n");
    return 1;
  }

  // Fused-vs-per-home sweep: LSTM (the paper's production method) and
  // GRU (its specialized register tiles land in the same fused engines;
  // the column keeps the GRU fused path benched, not just gate-tested).
  std::vector<FusedPoint> fused_points;
  for (const forecast::Method m :
       {forecast::Method::kLstm, forecast::Method::kGru}) {
    for (const std::size_t homes : fuse_homes) {
      if (homes < 2) continue;
      fused_points.push_back(run_fused_point(m, *trace, homes, rounds,
                                             round_minutes, total_minutes));
    }
  }
  bool fused_match = true;
  if (!fused_points.empty()) {
    std::printf("\nfused vs per-home (one group per round):\n");
    util::TextTable ftable({"method", "homes", "windows", "per-home w/s",
                            "fused w/s", "speedup", "bitwise"});
    for (const auto& p : fused_points) {
      ftable.add_row({p.method, std::to_string(p.homes),
                      std::to_string(p.windows),
                      std::to_string(p.per_home_windows_per_sec()),
                      std::to_string(p.fused_windows_per_sec()),
                      std::to_string(p.speedup()),
                      p.bitwise_match ? "yes" : "NO"});
      fused_match = fused_match && p.bitwise_match;
    }
    ftable.print();
  }
  if (!fused_match) {
    std::fprintf(stderr,
                 "FATAL: fused training diverged from the per-home path\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"dfl_throughput\",\n"
               "  \"days\": %zu,\n"
               "  \"rounds\": %zu,\n"
               "  \"round_minutes\": %zu,\n"
               "  \"lstm_windows\": %zu,\n"
               "  \"lstm_seconds\": %.6f,\n"
               "  \"lstm_windows_per_sec\": %.1f,\n"
               "  \"gru_windows\": %zu,\n"
               "  \"gru_seconds\": %.6f,\n"
               "  \"gru_windows_per_sec\": %.1f,\n"
               "  \"deterministic\": %s,\n"
               "  \"fused_bitwise_match\": %s,\n"
               "  \"fused_points\": [",
               days, rounds, round_minutes, lstm.windows, lstm.seconds,
               lstm.windows_per_sec(), gru.windows, gru.seconds,
               gru.windows_per_sec(),
               lstm.deterministic && gru.deterministic ? "true" : "false",
               fused_match ? "true" : "false");
  for (std::size_t i = 0; i < fused_points.size(); ++i) {
    const auto& p = fused_points[i];
    std::fprintf(f,
                 "%s\n    {\"method\": \"%s\", \"homes\": %zu,"
                 " \"windows\": %zu,"
                 " \"per_home_windows_per_sec\": %.1f,"
                 " \"fused_windows_per_sec\": %.1f,"
                 " \"speedup\": %.2f, \"bitwise_match\": %s}",
                 i == 0 ? "" : ",", p.method.c_str(), p.homes, p.windows,
                 p.per_home_windows_per_sec(), p.fused_windows_per_sec(),
                 p.speedup(), p.bitwise_match ? "true" : "false");
  }
  std::fprintf(f, "%s]\n}\n", fused_points.empty() ? "" : "\n  ");
  std::fclose(f);
  std::printf("\nbaseline written to %s\n", out_path.c_str());

  bench::dump_metrics("dfl_throughput");
  return 0;
}
