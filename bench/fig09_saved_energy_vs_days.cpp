// Figure 9 — saved energy per residence vs accumulated EMS training
// days, for all five compared methods.
// Paper: final value Local ≈ PFDRL ≥ Cloud ≈ FL ≈ FRL; convergence speed
// PFDRL ≈ FRL fastest, Local slowest.
#include "common.hpp"

#include "core/pipeline.hpp"

int main() {
  using namespace pfdrl;
  bench::print_figure_header(
      "Figure 9: saved energy per client vs EMS training days",
      "PFDRL ties the best final savings and converges fastest");

  const std::size_t ems_days = 4;
  const auto scenario = bench::bench_scenario(2 + ems_days + 1);

  const core::EmsMethod methods[] = {core::EmsMethod::kLocal,
                                     core::EmsMethod::kCloud,
                                     core::EmsMethod::kFl,
                                     core::EmsMethod::kFrl,
                                     core::EmsMethod::kPfdrl};

  std::vector<std::vector<sim::ConvergencePoint>> series;
  for (auto method : methods) {
    series.push_back(sim::run_convergence(
        scenario, sim::bench_pipeline(method), /*forecast_train_days=*/2,
        ems_days));
  }

  util::TextTable kwh({"day", "Local kWh", "Cloud kWh", "FL kWh", "FRL kWh",
                       "PFDRL kWh"});
  util::TextTable frac({"day", "Local %", "Cloud %", "FL %", "FRL %",
                        "PFDRL %"});
  for (std::size_t d = 0; d < series[0].size(); ++d) {
    std::vector<std::string> row_kwh = {std::to_string(d + 1)};
    std::vector<std::string> row_frac = {std::to_string(d + 1)};
    for (const auto& s : series) {
      row_kwh.push_back(util::fmt_double(s[d].saved_kwh_per_client, 3));
      row_frac.push_back(util::fmt_percent(s[d].saved_fraction));
    }
    kwh.add_row(std::move(row_kwh));
    frac.add_row(std::move(row_frac));
  }
  kwh.print("net saved energy per client (kWh, held-out day):");
  std::printf("\n");
  frac.print("net saved standby-energy fraction:");
  return 0;
}
