// Micro-benchmarks of the computational kernels underlying the system:
// matmul, dense forward/backward, LSTM steps, replay sampling, message
// bus broadcast, and federated averaging.
#include <benchmark/benchmark.h>

#include "fl/aggregate.hpp"
#include "net/bus.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/workspace.hpp"
#include "rl/dqn.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace {

using namespace pfdrl;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  nn::Matrix a(n, n);
  nn::Matrix b(n, n);
  for (double& x : a.data()) x = rng.normal();
  for (double& x : b.data()) x = rng.normal();
  nn::Matrix out(n, n);
  for (auto _ : state) {
    nn::matmul(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_DenseForward(benchmark::State& state) {
  const std::size_t batch = 32, in = 100, out_dim = 100;
  util::Rng rng(2);
  std::vector<double> params(nn::dense_param_count(in, out_dim));
  nn::dense_init(params, in, out_dim, nn::InitScheme::kHeNormal, rng);
  nn::Matrix x(batch, in);
  for (double& v : x.data()) v = rng.normal();
  nn::Matrix y;
  for (auto _ : state) {
    nn::dense_forward(params, in, out_dim, x, nn::Activation::kRelu, y);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_DenseForward);

void BM_Matvec1(benchmark::State& state) {
  const std::size_t in = 100, out_dim = 100;
  util::Rng rng(12);
  std::vector<double> params(nn::dense_param_count(in, out_dim));
  nn::dense_init(params, in, out_dim, nn::InitScheme::kHeNormal, rng);
  const std::span<const double> w(params.data(), in * out_dim);
  const std::span<const double> b(params.data() + in * out_dim, out_dim);
  std::vector<double> x(in);
  for (double& v : x) v = rng.normal();
  std::vector<double> y(out_dim);
  for (auto _ : state) {
    nn::matvec1(w, b, x, in, out_dim, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel("100x100 layer, batch 1");
}
BENCHMARK(BM_Matvec1);

void BM_DenseForwardBatch1(benchmark::State& state) {
  const std::size_t in = 100, out_dim = 100;
  util::Rng rng(13);
  std::vector<double> params(nn::dense_param_count(in, out_dim));
  nn::dense_init(params, in, out_dim, nn::InitScheme::kHeNormal, rng);
  nn::Matrix x(1, in);
  for (double& v : x.data()) v = rng.normal();
  nn::Matrix y;
  for (auto _ : state) {
    nn::dense_forward(params, in, out_dim, x, nn::Activation::kRelu, y);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetLabel("matvec1 dispatch path");
}
BENCHMARK(BM_DenseForwardBatch1);

// The two batch-1 inference paths of the paper's DQN net, side by side:
// the allocating predict() vs the workspace arena path the agents use.
void BM_MlpPredictAlloc(benchmark::State& state) {
  util::Rng rng(14);
  nn::Mlp net({5, 100, 100, 100, 100, 100, 100, 100, 100, 3},
              nn::Activation::kRelu, nn::Activation::kIdentity,
              nn::InitScheme::kHeNormal, rng);
  nn::Matrix x(1, 5);
  for (double& v : x.data()) v = rng.normal();
  for (auto _ : state) {
    const nn::Matrix q = net.predict(x);
    benchmark::DoNotOptimize(q.data().data());
  }
  state.SetLabel("paper 8x100 net, fresh workspace per call");
}
BENCHMARK(BM_MlpPredictAlloc);

void BM_MlpPredictWorkspace(benchmark::State& state) {
  util::Rng rng(14);  // same seed: identical net as BM_MlpPredictAlloc
  nn::Mlp net({5, 100, 100, 100, 100, 100, 100, 100, 100, 3},
              nn::Activation::kRelu, nn::Activation::kIdentity,
              nn::InitScheme::kHeNormal, rng);
  nn::Matrix x(1, 5);
  for (double& v : x.data()) v = rng.normal();
  nn::Workspace ws;
  for (auto _ : state) {
    ws.reset();
    const nn::Matrix& q = net.predict(x, ws);
    benchmark::DoNotOptimize(q.data().data());
  }
  state.SetLabel("paper 8x100 net, reused arena (steady-state 0 allocs)");
}
BENCHMARK(BM_MlpPredictWorkspace);

void BM_DqnActGreedy(benchmark::State& state) {
  rl::DqnConfig cfg;  // paper defaults: 8x100 ReLU, 3 actions
  cfg.state_dim = 5;
  rl::DqnAgent agent(cfg);
  util::Rng rng(15);
  std::vector<double> s(cfg.state_dim);
  for (double& v : s) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act_greedy(s));
  }
  state.SetLabel("per-decision EMS hot path");
}
BENCHMARK(BM_DqnActGreedy);

void BM_MlpTrainBatch(benchmark::State& state) {
  util::Rng rng(3);
  nn::Mlp net({5, 100, 100, 100, 100, 100, 100, 100, 100, 3},
              nn::Activation::kRelu, nn::Activation::kIdentity,
              nn::InitScheme::kHeNormal, rng);
  nn::Adam opt(1e-3);
  nn::Matrix x(32, 5);
  nn::Matrix y(32, 3);
  for (double& v : x.data()) v = rng.normal();
  for (double& v : y.data()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.train_batch(x, y, nn::LossKind::kHuber, opt));
  }
  state.SetLabel("paper 8x100 DQN net, batch 32");
}
BENCHMARK(BM_MlpTrainBatch);

void BM_LstmTrainBatch(benchmark::State& state) {
  util::Rng rng(4);
  nn::LstmRegressor net(3, 32, 1, rng);
  nn::Adam opt(1e-3);
  std::vector<nn::Matrix> xs(16, nn::Matrix(32, 3));
  nn::Matrix y(32, 1);
  for (auto& m : xs) {
    for (double& v : m.data()) v = rng.normal();
  }
  for (double& v : y.data()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_batch(xs, y, nn::LossKind::kMae, opt));
  }
  state.SetLabel("window 16, hidden 32, batch 32");
}
BENCHMARK(BM_LstmTrainBatch);

void BM_ReplaySample(benchmark::State& state) {
  rl::ReplayBuffer buf(2000);
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    rl::Transition t;
    t.state.assign(5, rng.normal());
    t.next_state.assign(5, rng.normal());
    buf.push(std::move(t));
  }
  for (auto _ : state) {
    const auto batch = buf.sample(32, rng);
    benchmark::DoNotOptimize(batch.data());
  }
}
BENCHMARK(BM_ReplaySample);

void BM_BusBroadcast(benchmark::State& state) {
  const auto homes = static_cast<std::size_t>(state.range(0));
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, homes));
  net::Message msg;
  msg.sender = 0;
  msg.payload.assign(10000, 1.0);
  for (auto _ : state) {
    bus.broadcast(msg);
    for (std::size_t h = 1; h < homes; ++h) {
      auto drained = bus.drain(static_cast<net::AgentId>(h));
      benchmark::DoNotOptimize(drained.data());
    }
  }
  state.SetLabel("10k-double payload");
}
BENCHMARK(BM_BusBroadcast)->Arg(5)->Arg(20);

void BM_FedAvg(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  std::vector<std::vector<double>> inputs(clients,
                                          std::vector<double>(80000));
  for (auto& v : inputs) {
    for (double& x : v) x = rng.normal();
  }
  std::vector<std::span<const double>> views(inputs.begin(), inputs.end());
  std::vector<double> out(80000);
  for (auto _ : state) {
    fl::fedavg(views, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel("80k params (paper DQN scale)");
}
BENCHMARK(BM_FedAvg)->Arg(5)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
